//! The trace-driven speculative-service simulator (§3.2–§3.4).
//!
//! Replays a trace twice — once with speculation, once without — and
//! reports the paper's four ratios. Key modelling decisions, all taken
//! from the paper:
//!
//! * **Speculation happens on server-visible requests only.** A cache
//!   hit never reaches the server, so it can trigger no push. This is
//!   what makes embedding-only speculation (`T_p ≈ 1`) traffic-neutral:
//!   with a long-lived cache each document misses at most once per
//!   client, and the pushed embedded objects are exactly the ones the
//!   client was about to request.
//! * **A push rides on the triggering response**: it costs bytes but no
//!   additional server request — reducing server load is the protocol's
//!   point.
//! * **Non-cooperative servers are stateless**: they may push documents
//!   the client already holds (wasted bytes). Cooperative clients
//!   piggyback a cache digest that suppresses those pushes (§3.4).
//! * **Hints** (hybrid policy) are client-*initiated* prefetches: each
//!   one the client acts on is a normal request — it costs a request
//!   and bytes, but its latency is off the critical path.

use serde::{Deserialize, Serialize};
use specweb_core::metrics::{CostWeights, Ratios, RunTotals};
use specweb_core::stats::{ServiceQuantiles, ServiceTimeDist};
use specweb_core::units::Bytes;
use specweb_core::Result;
use specweb_netsim::cost::LatencyModel;
use specweb_netsim::fault::{FaultPlan, RetrySchedule};
use specweb_netsim::topology::Topology;
use specweb_trace::generator::Trace;

use crate::cache::{CacheModel, ClientCache};
use crate::estimator::{EstimatorConfig, MatrixPair, MatrixStore, RollingEstimator};
use crate::policy::{decide, Policy};
use crate::prefetch::{HintPolicy, UserProfile};

/// Full simulation configuration (the paper's §3.2 parameter table plus
/// the §3.4 refinements).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpecConfig {
    /// The speculation policy (baseline: `p*[i,j] ≥ T_p`).
    pub policy: Policy,
    /// `MaxSize`: documents larger than this are never pushed
    /// (baseline: ∞).
    pub max_size: Bytes,
    /// The client cache model (baseline: `SessionTimeout = ∞`).
    pub cache: CacheModel,
    /// Estimation schedule: `T_w` window, `HistoryLength`, `UpdateCycle`
    /// (baseline: 5 s / 60 days / 1 day).
    pub estimator: EstimatorConfig,
    /// Cooperative clients: piggybacked cache digests (baseline: off).
    pub cooperative: bool,
    /// How clients react to hints (only meaningful with
    /// [`Policy::Hybrid`]; baseline: ignore).
    pub hint_policy: HintPolicy,
    /// Pure client-side prefetching from per-user profiles: prefetch any
    /// own-profile prediction at or above this probability (the \[5\]
    /// companion study; baseline: off).
    pub client_profile_prefetch: Option<f64>,
    /// The latency model for the service-time metric.
    pub latency: LatencyModel,
    /// The §3.2 cost weights (reported, not optimized against).
    pub cost: CostWeights,
    /// Metrics are collected from this day on (earlier days warm the
    /// caches and the estimator).
    pub warmup_days: u64,
}

impl SpecConfig {
    /// The paper's baseline parameters at threshold `tp`.
    pub fn baseline(tp: f64) -> SpecConfig {
        SpecConfig {
            policy: Policy::Threshold { tp },
            max_size: Bytes::INFINITE,
            cache: CacheModel::Infinite,
            estimator: EstimatorConfig::default(),
            cooperative: false,
            hint_policy: HintPolicy::Ignore,
            client_profile_prefetch: None,
            latency: LatencyModel::default(),
            cost: CostWeights::default(),
            warmup_days: 7,
        }
    }
}

/// Simulation results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecOutcome {
    /// Totals of the speculative run (measured window only).
    pub speculative: RunTotals,
    /// Totals of the non-speculative run.
    pub baseline: RunTotals,
    /// The four ratios.
    pub ratios: Ratios,
    /// Documents pushed speculatively.
    pub pushes: u64,
    /// Pushed documents that were already in the client's cache
    /// (wasted; zero for cooperative clients).
    pub wasted_pushes: u64,
    /// Client-initiated prefetch requests issued.
    pub prefetches: u64,
    /// Combined §3.2 cost of the speculative run.
    pub cost_speculative: f64,
    /// Combined §3.2 cost of the baseline run.
    pub cost_baseline: f64,
    /// Exact per-access service-time quantiles of the speculative run
    /// (cache hits count as 0 ms — the paper's service-time numerator is
    /// the *client-observed* wait, and a hit waits for nothing).
    pub service_times: ServiceQuantiles,
    /// The same quantiles for the baseline run, so reports can show how
    /// speculation moves the tail, not just the mean ratio.
    pub baseline_service_times: ServiceQuantiles,
}

/// A precomputed baseline replay: the totals plus its service-time
/// summary. Parameter sweeps compute this **once** via
/// [`SpecSim::baseline_totals`] and hand it to every
/// [`SpecSim::run_with_store_and_baseline`] point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BaselineRun {
    /// Totals of the non-speculative replay (measured window).
    pub totals: RunTotals,
    /// Exact service-time quantiles of that replay.
    pub service_times: ServiceQuantiles,
}

/// The simulator.
#[derive(Debug)]
pub struct SpecSim<'a> {
    trace: &'a Trace,
    /// Per-client hop distance to the home servers (at the tree root).
    hops: Vec<u32>,
    /// Per-client edge-owning nodes on the path to the root (for fault
    /// lookups; the root owns no edge and is excluded).
    paths: Vec<Vec<specweb_core::ids::NodeId>>,
    /// Per-client leaf node (for client-side fault lookups: slow
    /// clients, partial writes, stalls).
    nodes: Vec<specweb_core::ids::NodeId>,
    /// Static partition of access indices by the client's root-child
    /// cluster (DESIGN.md §12). Replay state is strictly per-client
    /// (caches, profiles), the matrices and fault plan are read-only,
    /// and every accumulator is an integer sum — so any client
    /// partition replays independently and merges *exactly*. Shards are
    /// ordered by cluster node id, making the merge canonical for any
    /// worker count.
    shards: Vec<Vec<usize>>,
    /// Optional observability bundle: per-policy push/hit/waste
    /// accounting lands here (deterministic channel — the replay is a
    /// pure function of trace + config).
    obs: Option<specweb_core::obs::Obs>,
}

#[derive(Debug, Default, PartialEq, Eq)]
struct ReplayCounters {
    pushes: u64,
    push_bytes: u64,
    wasted_pushes: u64,
    wasted_push_bytes: u64,
    cache_hits: u64,
    prefetches: u64,
    retries: u64,
    unavailable: u64,
    retry_wait_ms: u64,
    stalled: u64,
    stall_wait_ms: u64,
    slow_served: u64,
    partial_write_pushes: u64,
    /// Per-access service times of every *served* access (cache hits
    /// record 0 ms; unavailable requests record nothing — they were
    /// never served). A multiset, so shard merges compare equal to a
    /// serial replay structurally.
    service: ServiceTimeDist,
    /// Service times of the accesses deferred by a client stall.
    stalled_service: ServiceTimeDist,
    /// Service times of the accesses drained by a slow client.
    slow_service: ServiceTimeDist,
}

impl ReplayCounters {
    /// Merges a shard's counters (saturating sums, so the merge is exact
    /// short of u64::MAX and order-independent; shards still merge in
    /// canonical order).
    fn merge(&mut self, other: &ReplayCounters) {
        self.pushes = self.pushes.saturating_add(other.pushes);
        self.push_bytes = self.push_bytes.saturating_add(other.push_bytes);
        self.wasted_pushes = self.wasted_pushes.saturating_add(other.wasted_pushes);
        self.wasted_push_bytes = self
            .wasted_push_bytes
            .saturating_add(other.wasted_push_bytes);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.prefetches = self.prefetches.saturating_add(other.prefetches);
        self.retries = self.retries.saturating_add(other.retries);
        self.unavailable = self.unavailable.saturating_add(other.unavailable);
        self.retry_wait_ms = self.retry_wait_ms.saturating_add(other.retry_wait_ms);
        self.stalled = self.stalled.saturating_add(other.stalled);
        self.stall_wait_ms = self.stall_wait_ms.saturating_add(other.stall_wait_ms);
        self.slow_served = self.slow_served.saturating_add(other.slow_served);
        self.partial_write_pushes = self
            .partial_write_pushes
            .saturating_add(other.partial_write_pushes);
        self.service.merge(&other.service);
        self.stalled_service.merge(&other.stalled_service);
        self.slow_service.merge(&other.slow_service);
    }
}

/// Fault context threaded through a degraded replay.
struct FaultCtx<'p> {
    plan: &'p FaultPlan,
    retry: RetrySchedule,
}

/// Results of [`SpecSim::run_with_faults`]: the (degraded) outcome plus
/// availability and retry-traffic metrics. Both replays — speculative
/// and baseline — run against the same fault plan, so the ratios
/// compare like with like.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradedSpecOutcome {
    /// The paper's outcome, measured under faults.
    pub outcome: SpecOutcome,
    /// Retry attempts in the speculative replay (measured window).
    pub retries: u64,
    /// Requests never served: the client's path to the server stayed
    /// down through every backoff attempt (measured window).
    pub unavailable: u64,
    /// Total backoff the speculative replay's clients waited through,
    /// in milliseconds (already included in the latency totals).
    pub retry_wait_ms: u64,
    /// Fraction of accesses served (cache hits count as served).
    pub availability: f64,
    /// Retry attempts in the baseline replay — more misses mean more
    /// exposure to the same faults; the gap is speculation's
    /// availability benefit.
    pub baseline_retries: u64,
    /// Unserved requests in the baseline replay.
    pub baseline_unavailable: u64,
    /// Misses deferred because the client was stalled mid-session (a
    /// leaf in a `stall` window); the request waits out the window.
    pub stalled: u64,
    /// Total deferral those stalls imposed, in milliseconds (already
    /// included in the latency totals).
    pub stall_wait_ms: u64,
    /// Misses served to a slow-draining client (a leaf in a
    /// `slow_client` window): the fetch latency was inflated by the
    /// plan's slow-client factor.
    pub slow_served: u64,
    /// Speculative pushes that landed on a client in a `partial_write`
    /// window: the first copy arrived truncated, and the re-send's
    /// bytes are charged to the speculative run's traffic.
    pub partial_write_pushes: u64,
    /// Service-time quantiles of just the stall-deferred accesses (the
    /// degraded class the paper's mean hides: a handful of multi-second
    /// waits vanish inside millions of fast ones).
    pub stalled_service_times: ServiceQuantiles,
    /// Service-time quantiles of the accesses served to slow-draining
    /// clients (latency inflated by the plan's slow factor).
    pub slow_service_times: ServiceQuantiles,
}

/// Where a replay gets its `P`/`P*` matrices from.
enum MatrixSource<'s, 'a> {
    /// Baseline replay: no speculation machinery at all.
    Off,
    /// Compute lazily while replaying (single runs).
    Rolling(RollingEstimator<'a>),
    /// Shared precomputed estimates (parameter sweeps).
    Store(&'s MatrixStore),
}

impl MatrixSource<'_, '_> {
    fn for_day(&mut self, day: u64) -> Result<Option<&MatrixPair>> {
        match self {
            MatrixSource::Off => Ok(None),
            MatrixSource::Rolling(est) => est.matrices_for_day(day).map(Some),
            MatrixSource::Store(s) => Ok(Some(s.for_day(day))),
        }
    }
}

impl<'a> SpecSim<'a> {
    /// Creates a simulator over a trace and the topology its clients
    /// live on.
    pub fn new(trace: &'a Trace, topo: &Topology) -> SpecSim<'a> {
        let hops = trace.clients.iter().map(|c| topo.depth(c.node)).collect();
        let paths = trace
            .clients
            .iter()
            .map(|c| {
                let mut p = topo.path_to_root(c.node);
                p.pop(); // the root owns no edge
                p
            })
            .collect();
        let nodes = trace.clients.iter().map(|c| c.node).collect();

        // Cluster each client under its root-child subtree (clients at
        // or directly under the root all land in one cluster), then
        // partition the access indices accordingly.
        let client_cluster: Vec<specweb_core::ids::NodeId> = trace
            .clients
            .iter()
            .map(|c| {
                let p = topo.path_to_root(c.node);
                if p.len() >= 2 {
                    p[p.len() - 2]
                } else {
                    p[0]
                }
            })
            .collect();
        let mut clusters = client_cluster.clone();
        clusters.sort_unstable();
        clusters.dedup();
        let shard_index: std::collections::BTreeMap<specweb_core::ids::NodeId, usize> =
            clusters.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        // lint:allow(W3): one shard per already-materialized cluster id
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); clusters.len()];
        for (i, a) in trace.accesses.iter().enumerate() {
            shards[shard_index[&client_cluster[a.client.index()]]].push(i);
        }

        SpecSim {
            trace,
            hops,
            paths,
            nodes,
            shards,
            obs: None,
        }
    }

    /// Attaches an observability bundle: every subsequent replay
    /// records per-policy push/hit/waste counters (and, under faults,
    /// the injected-fault log) into it. Clones share state, so the
    /// caller snapshots its own handle when the runs are done.
    pub fn with_obs(mut self, obs: &specweb_core::obs::Obs) -> Self {
        self.obs = Some(obs.clone());
        self
    }

    /// Runs both replays and computes the ratios.
    pub fn run(&self, cfg: &SpecConfig) -> Result<SpecOutcome> {
        self.run_with_store(cfg, None)
    }

    /// Like [`SpecSim::run`], but reuses a precomputed [`MatrixStore`]
    /// (must have been built with the same estimator configuration) —
    /// the way parameter sweeps avoid re-estimating `P`/`P*` for every
    /// policy point.
    pub fn run_with_store(
        &self,
        cfg: &SpecConfig,
        store: Option<&MatrixStore>,
    ) -> Result<SpecOutcome> {
        self.run_with_store_and_baseline(cfg, store, None)
    }

    /// The baseline (no-speculation) replay alone. The baseline depends
    /// only on the trace, the cache model and `warmup_days` — not on
    /// policy, `max_size`, cooperation, hints or the estimator — so
    /// parameter sweeps over those knobs can compute it **once** and
    /// hand it to [`SpecSim::run_with_store_and_baseline`] instead of
    /// re-replaying an identical baseline at every sweep point.
    pub fn baseline_totals(&self, cfg: &SpecConfig) -> Result<BaselineRun> {
        let (totals, counters) = self.replay(cfg, false, None, None)?;
        Ok(BaselineRun {
            totals,
            service_times: counters.service.quantiles(),
        })
    }

    /// Like [`SpecSim::run_with_store`], but reuses a baseline computed
    /// by [`SpecSim::baseline_totals`]. The caller must have computed it
    /// under the same `cache` model and `warmup_days` — the only
    /// configuration the baseline replay reads; passing `None` replays
    /// the baseline here, exactly like [`SpecSim::run_with_store`].
    pub fn run_with_store_and_baseline(
        &self,
        cfg: &SpecConfig,
        store: Option<&MatrixStore>,
        baseline: Option<&BaselineRun>,
    ) -> Result<SpecOutcome> {
        cfg.policy.validate()?;
        cfg.estimator.validate()?;
        if let Some(s) = store {
            if *s.config() != cfg.estimator {
                return Err(specweb_core::CoreError::invalid_config(
                    "spec.matrix_store",
                    "store was precomputed with a different estimator configuration",
                ));
            }
        }
        let (speculative, counters) = self.replay(cfg, true, store, None)?;
        let base = match baseline {
            Some(b) => *b,
            None => {
                let (totals, base_counters) = self.replay(cfg, false, store, None)?;
                BaselineRun {
                    totals,
                    service_times: base_counters.service.quantiles(),
                }
            }
        };
        let ratios = Ratios::between(&speculative, &base.totals);
        Ok(SpecOutcome {
            cost_speculative: cfg.cost.total_cost(&speculative),
            cost_baseline: cfg.cost.total_cost(&base.totals),
            service_times: counters.service.quantiles(),
            baseline_service_times: base.service_times,
            speculative,
            baseline: base.totals,
            ratios,
            pushes: counters.pushes,
            wasted_pushes: counters.wasted_pushes,
            prefetches: counters.prefetches,
        })
    }

    /// Runs both replays under a deterministic fault plan and reports
    /// the paper's ratios alongside availability and retry-traffic
    /// metrics. A miss whose path to the root crosses a down link (or a
    /// crashed node's edge) is retried on the [`RetrySchedule`]'s capped
    /// exponential backoff; if the path never recovers within the
    /// schedule the request is counted unavailable and the client goes
    /// unserved. Slow links inflate fetch latency by the plan's delay
    /// factor. The replay consumes no randomness, so the same plan
    /// yields bit-for-bit identical outcomes.
    pub fn run_with_faults(
        &self,
        cfg: &SpecConfig,
        plan: &FaultPlan,
        retry: RetrySchedule,
    ) -> Result<DegradedSpecOutcome> {
        cfg.policy.validate()?;
        cfg.estimator.validate()?;
        retry.validate()?;
        if let Some(obs) = &self.obs {
            // One fault log per degraded run (both replays share the
            // plan, so recording per replay would double-count).
            plan.record_to(obs);
        }
        let ctx = FaultCtx { plan, retry };
        let (speculative, counters) = self.replay(cfg, true, None, Some(&ctx))?;
        let (baseline, base_counters) = self.replay(cfg, false, None, Some(&ctx))?;
        let ratios = Ratios::between(&speculative, &baseline);
        let outcome = SpecOutcome {
            cost_speculative: cfg.cost.total_cost(&speculative),
            cost_baseline: cfg.cost.total_cost(&baseline),
            service_times: counters.service.quantiles(),
            baseline_service_times: base_counters.service.quantiles(),
            speculative,
            baseline,
            ratios,
            pushes: counters.pushes,
            wasted_pushes: counters.wasted_pushes,
            prefetches: counters.prefetches,
        };
        let attempted = outcome.speculative.accesses.max(1);
        Ok(DegradedSpecOutcome {
            availability: (attempted - counters.unavailable.min(attempted)) as f64
                / attempted as f64,
            retries: counters.retries,
            unavailable: counters.unavailable,
            retry_wait_ms: counters.retry_wait_ms,
            baseline_retries: base_counters.retries,
            baseline_unavailable: base_counters.unavailable,
            stalled: counters.stalled,
            stall_wait_ms: counters.stall_wait_ms,
            slow_served: counters.slow_served,
            partial_write_pushes: counters.partial_write_pushes,
            stalled_service_times: counters.stalled_service.quantiles(),
            slow_service_times: counters.slow_service.quantiles(),
            outcome,
        })
    }

    /// One replay pass: fans the per-cluster shards out over the
    /// process-default worker pool and merges the partial totals in
    /// cluster order. The merge is exact (see the `shards` field), so
    /// the result is byte-identical to a serial replay for any worker
    /// count. The single ineligible case is a speculative replay with no
    /// precomputed store: the [`RollingEstimator`] mutates shared
    /// cross-client state lazily, so that replay stays serial.
    fn replay(
        &self,
        cfg: &SpecConfig,
        speculate: bool,
        store: Option<&MatrixStore>,
        faults: Option<&FaultCtx<'_>>,
    ) -> Result<(RunTotals, ReplayCounters)> {
        // One frame per replay pass — placed here (not per shard, whose
        // call count varies with the worker gate below) so profiler call
        // counts stay jobs-invariant.
        let _f = specweb_core::obs::profile::frame(if speculate {
            "spec.replay"
        } else {
            "spec.replay.baseline"
        });
        let shardable = !(speculate && store.is_none());
        // Sharding is byte-exact (golden-tested), but the index gather
        // costs locality — with one worker the serial path is faster.
        let pool = specweb_core::par::Pool::auto();
        let (totals, counters) = if shardable && self.shards.len() > 1 && pool.jobs() > 1 {
            let parts = pool.try_map_indexed(&self.shards, |_, idxs: &Vec<usize>| {
                self.replay_shard(
                    cfg,
                    speculate,
                    store,
                    faults,
                    idxs.iter().map(|&i| &self.trace.accesses[i]),
                )
            })?;
            let mut totals = RunTotals::new();
            let mut counters = ReplayCounters::default();
            for (t, c) in &parts {
                totals.merge(t);
                counters.merge(c);
            }
            (totals, counters)
        } else {
            self.replay_shard(cfg, speculate, store, faults, self.trace.accesses.iter())?
        };
        self.record_replay(cfg, speculate, &totals, &counters);
        Ok((totals, counters))
    }

    /// Replays one shard of accesses (or, on the serial path, all of
    /// them). Accesses must arrive in trace order within the shard.
    fn replay_shard(
        &self,
        cfg: &SpecConfig,
        speculate: bool,
        store: Option<&MatrixStore>,
        faults: Option<&FaultCtx<'_>>,
        accesses: impl Iterator<Item = &'a specweb_trace::generator::Access>,
    ) -> Result<(RunTotals, ReplayCounters)> {
        let trace = self.trace;
        let catalog = &trace.catalog;
        let n_clients = trace.clients.len();

        let mut caches: Vec<ClientCache> = (0..n_clients)
            .map(|_| ClientCache::new(cfg.cache))
            .collect();
        let needs_profiles =
            cfg.client_profile_prefetch.is_some() || !matches!(cfg.hint_policy, HintPolicy::Ignore);
        let mut profiles: Vec<UserProfile> = if needs_profiles {
            (0..n_clients)
                .map(|_| UserProfile::new(cfg.estimator.window))
                .collect()
        } else {
            Vec::new()
        };

        let mut estimator = match (speculate, store) {
            (false, _) => MatrixSource::Off,
            (true, Some(s)) => MatrixSource::Store(s),
            (true, None) => MatrixSource::Rolling(RollingEstimator::new(cfg.estimator, trace)?),
        };

        let mut totals = RunTotals::new();
        let mut counters = ReplayCounters::default();

        for a in accesses {
            let day = a.time.day();
            let measured = day >= cfg.warmup_days;
            let ci = a.client.index();
            let size = catalog.size(a.doc);
            let hops = self.hops[ci];

            caches[ci].on_request(a.time);
            if measured {
                totals.accesses += 1;
                // lint:allow(W1): Bytes AddAssign saturates (units::unit_arith!)
                totals.accessed_bytes += size;
            }

            let hit = caches[ci].contains(a.doc);
            if hit {
                if measured {
                    counters.cache_hits += 1;
                    // A hit is served instantly: it still contributes a
                    // sample (0 ms) so the quantiles describe what the
                    // *client* experienced, not just the misses.
                    counters.service.record(0);
                }
                // Cache hits are free and invisible to the server; only
                // client-side machinery observes them.
                if speculate {
                    if let Some(tp) = cfg.client_profile_prefetch {
                        self.profile_prefetch(
                            cfg,
                            tp,
                            a,
                            measured,
                            &mut caches[ci],
                            &mut profiles[ci],
                            &mut totals,
                            &mut counters,
                        );
                    }
                }
                if needs_profiles {
                    profiles[ci].record(a.time, a.doc);
                }
                continue;
            }

            // Miss: fetch from the server — but under faults the path
            // to the root may be down. Retry on the backoff schedule;
            // an exhausted schedule leaves the request unserved.
            let mut fetch_time = a.time;
            let mut delay_factor = 1.0;
            let mut was_stalled = false;
            let mut was_slow = false;
            if let Some(f) = faults {
                // A stalled client cannot even send its request: the
                // miss is deferred to the end of the stall window, and
                // every later fault lookup sees the deferred instant.
                if let Some(resume) = f.plan.stalled_until(self.nodes[ci], fetch_time) {
                    was_stalled = true;
                    if measured {
                        counters.stalled += 1;
                        counters.stall_wait_ms = counters
                            .stall_wait_ms
                            .saturating_add(resume.since(fetch_time).as_millis());
                    }
                    fetch_time = resume;
                }
                let edges = &self.paths[ci];
                let after_stall = fetch_time;
                if !f.plan.edges_up(edges, fetch_time) {
                    let mut reached = false;
                    for attempt in 0..f.retry.max_attempts {
                        fetch_time = fetch_time.saturating_add(f.retry.delay(attempt));
                        if measured {
                            counters.retries += 1;
                        }
                        if f.plan.edges_up(edges, fetch_time) {
                            reached = true;
                            break;
                        }
                    }
                    if !reached {
                        if measured {
                            counters.unavailable += 1;
                        }
                        if needs_profiles {
                            profiles[ci].record(a.time, a.doc);
                        }
                        continue;
                    }
                    if measured {
                        counters.retry_wait_ms = counters
                            .retry_wait_ms
                            .saturating_add(fetch_time.since(after_stall).as_millis());
                    }
                }
                delay_factor = f.plan.edges_delay_factor(edges, fetch_time);
                // A slow-draining client stretches the whole transfer:
                // its factor stacks on top of any slow links en route.
                let client_factor = f.plan.client_slow_factor(self.nodes[ci], fetch_time);
                if client_factor > 1.0 {
                    was_slow = true;
                    delay_factor *= client_factor;
                    if measured {
                        counters.slow_served += 1;
                    }
                }
            }
            if measured {
                // lint:allow(W1): Bytes AddAssign saturates (units::unit_arith!)
                totals.miss_bytes += size;
                totals.server_requests += 1;
                // lint:allow(W1): Bytes AddAssign saturates (units::unit_arith!)
                totals.bytes_sent += size;
                let fetch_ms = cfg.latency.fetch(size, hops).as_millis();
                let served_ms =
                    (fetch_ms as f64 * delay_factor) as u64 + fetch_time.since(a.time).as_millis();
                totals.latency_ms += served_ms;
                counters.service.record(served_ms);
                if was_stalled {
                    counters.stalled_service.record(served_ms);
                }
                if was_slow {
                    counters.slow_service.record(served_ms);
                }
            }
            caches[ci].insert(a.doc, size);

            // The server sees this request — speculation may ride along.
            if let Some(matrices) = estimator.for_day(day)? {
                let cache = &mut caches[ci];
                let decision = if cfg.cooperative {
                    decide(
                        &cfg.policy,
                        &matrices.closure,
                        &matrices.direct,
                        a.doc,
                        catalog,
                        cfg.max_size,
                        |j| cache.peek(j),
                    )
                } else {
                    decide(
                        &cfg.policy,
                        &matrices.closure,
                        &matrices.direct,
                        a.doc,
                        catalog,
                        cfg.max_size,
                        |_| false,
                    )
                };
                for &(j, _) in &decision.push {
                    if j == a.doc {
                        continue;
                    }
                    let jsize = catalog.size(j);
                    counters.pushes += 1;
                    counters.push_bytes = counters.push_bytes.saturating_add(jsize.get());
                    if cache.peek(j) {
                        counters.wasted_pushes += 1;
                        counters.wasted_push_bytes =
                            counters.wasted_push_bytes.saturating_add(jsize.get());
                    }
                    if measured {
                        // lint:allow(W1): Bytes AddAssign saturates (units::unit_arith!)
                        totals.bytes_sent += jsize;
                    }
                    if let Some(f) = faults {
                        if f.plan.partial_write_active(self.nodes[ci], fetch_time) {
                            // The push fragments at the client and
                            // truncates; the re-send succeeds, but the
                            // wasted first copy still crossed the wire.
                            counters.partial_write_pushes += 1;
                            if measured {
                                // lint:allow(W1): Bytes AddAssign saturates (units::unit_arith!)
                                totals.bytes_sent += jsize;
                            }
                        }
                    }
                    cache.insert(j, jsize);
                }
                // Hints → client-initiated prefetches (cost a request).
                if !decision.hints.is_empty() && needs_profiles {
                    let chosen = cfg
                        .hint_policy
                        .select(a.doc, &decision.hints, &profiles[ci]);
                    for j in chosen {
                        if caches[ci].peek(j) {
                            continue; // clients know their own cache
                        }
                        let jsize = catalog.size(j);
                        counters.prefetches += 1;
                        if measured {
                            totals.server_requests += 1;
                            // lint:allow(W1): Bytes AddAssign saturates (units::unit_arith!)
                            totals.bytes_sent += jsize;
                        }
                        caches[ci].insert(j, jsize);
                    }
                }
            }

            // Pure client-side profile prefetching (with or without
            // server speculation — the paper proposes combining them).
            // Like pushes, it is part of the treatment: the baseline
            // replay must not prefetch.
            if speculate {
                if let Some(tp) = cfg.client_profile_prefetch {
                    self.profile_prefetch(
                        cfg,
                        tp,
                        a,
                        measured,
                        &mut caches[ci],
                        &mut profiles[ci],
                        &mut totals,
                        &mut counters,
                    );
                }
            }

            if needs_profiles {
                profiles[ci].record(a.time, a.doc);
            }
        }
        Ok((totals, counters))
    }

    /// Publishes one replay's accounting into the attached obs bundle
    /// (no-op without one). Aggregate `spec.*` counters match the
    /// ISSUE-level names; `spec.policy.<label>.*` break the same
    /// numbers down per speculation policy. Everything here is a pure
    /// function of trace + config, so it all sits on the deterministic
    /// channel and merges additively across replays and sweep points.
    fn record_replay(
        &self,
        cfg: &SpecConfig,
        speculate: bool,
        totals: &RunTotals,
        counters: &ReplayCounters,
    ) {
        let Some(obs) = &self.obs else { return };
        if !speculate {
            obs.metrics
                .counter("spec.baseline_requests")
                .add(totals.server_requests);
            publish_service_histogram(obs, "spec.baseline.service_time_ms", &counters.service);
            return;
        }
        let label = cfg.policy.kind_label();
        publish_service_histogram(obs, "spec.service_time_ms", &counters.service);
        publish_service_histogram(
            obs,
            &format!("spec.policy.{label}.service_time_ms"),
            &counters.service,
        );
        let pairs = [
            ("accesses", totals.accesses),
            ("server_requests", totals.server_requests),
            ("cache_hits", counters.cache_hits),
            ("pushes", counters.pushes),
            ("push_bytes", counters.push_bytes),
            ("pushes_wasted", counters.wasted_pushes),
            ("pushes_wasted_bytes", counters.wasted_push_bytes),
            ("prefetches", counters.prefetches),
            ("retries", counters.retries),
            ("unavailable", counters.unavailable),
            ("stalled", counters.stalled),
            ("stall_wait_ms", counters.stall_wait_ms),
            ("slow_served", counters.slow_served),
            ("pushes_partial_write", counters.partial_write_pushes),
        ];
        for (name, v) in pairs {
            obs.metrics.counter(&format!("spec.{name}")).add(v);
            obs.metrics
                .counter(&format!("spec.policy.{label}.{name}"))
                .add(v);
        }
    }

    /// Client-initiated prefetching from the client's own profile: runs
    /// on *every* access (the client sees its cache hits even though the
    /// server does not). Each acted-on prediction is a normal request.
    #[allow(clippy::too_many_arguments)]
    fn profile_prefetch(
        &self,
        cfg: &SpecConfig,
        tp: f64,
        a: &specweb_trace::generator::Access,
        measured: bool,
        cache: &mut ClientCache,
        profile: &mut UserProfile,
        totals: &mut RunTotals,
        counters: &mut ReplayCounters,
    ) {
        let _ = cfg;
        for (j, _) in profile.predict(a.doc, tp) {
            if cache.peek(j) {
                continue;
            }
            let jsize = self.trace.catalog.size(j);
            counters.prefetches += 1;
            if measured {
                totals.server_requests += 1;
                // lint:allow(W1): Bytes AddAssign saturates (units::unit_arith!)
                totals.bytes_sent += jsize;
            }
            cache.insert(j, jsize);
        }
    }
}

/// Publishes a replay's service-time distribution as a log₂-bucketed
/// histogram on the deterministic channel (bucket `i` ⇔ `(ms+1).ilog2()
/// == i`, observed at the bucket midpoint `i + 0.5`). The bins are a
/// pure function of trace + config, so the histogram is byte-identical
/// across `--jobs` settings and lands in the golden-diffed manifests.
fn publish_service_histogram(obs: &specweb_core::obs::Obs, name: &str, dist: &ServiceTimeDist) {
    use specweb_core::stats::SERVICE_TIME_LOG2_BINS;
    let h = obs.metrics.histogram_on(
        name,
        specweb_core::obs::Channel::Deterministic,
        0.0,
        SERVICE_TIME_LOG2_BINS as f64,
        SERVICE_TIME_LOG2_BINS,
    );
    for (i, &n) in dist.log2_bins().iter().enumerate() {
        if n > 0 {
            h.observe_n(i as f64 + 0.5, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specweb_trace::generator::{TraceConfig, TraceGenerator};

    fn setup(seed: u64) -> (Trace, Topology) {
        let topo = Topology::balanced(2, 3, 4);
        let mut tc = TraceConfig::small(seed);
        tc.duration_days = 14;
        tc.sessions_per_day = 60;
        let trace = TraceGenerator::new(tc).unwrap().generate(&topo).unwrap();
        (trace, topo)
    }

    fn cfg(tp: f64) -> SpecConfig {
        let mut c = SpecConfig::baseline(tp);
        c.estimator.history_days = 10;
        c.warmup_days = 4;
        c
    }

    #[test]
    fn speculation_off_is_exactly_unity() {
        let (trace, topo) = setup(200);
        let sim = SpecSim::new(&trace, &topo);
        // T_p = 1 + ε can never fire… but T_p must be ≤ 1; use a policy
        // that can't match instead: threshold exactly 1.0 pushes only
        // certain deps, so use TopK with k = 0.
        let mut c = cfg(0.5);
        c.policy = Policy::TopK { k: 0, floor: 0.5 };
        let out = sim.run(&c).unwrap();
        assert_eq!(out.pushes, 0);
        assert_eq!(out.speculative, out.baseline);
        assert!((out.ratios.bandwidth - 1.0).abs() < 1e-12);
        assert!((out.ratios.server_load - 1.0).abs() < 1e-12);
        assert!((out.ratios.service_time - 1.0).abs() < 1e-12);
        assert!((out.ratios.miss_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moderate_speculation_improves_the_three_metrics() {
        let (trace, topo) = setup(201);
        let sim = SpecSim::new(&trace, &topo);
        let out = sim.run(&cfg(0.4)).unwrap();
        assert!(out.pushes > 0, "no speculation happened");
        assert!(
            out.ratios.bandwidth >= 1.0,
            "speculation cannot reduce traffic: {}",
            out.ratios.bandwidth
        );
        assert!(
            out.ratios.server_load < 1.0,
            "server load should drop: {}",
            out.ratios.server_load
        );
        assert!(
            out.ratios.service_time < 1.0,
            "service time should drop: {}",
            out.ratios.service_time
        );
        assert!(
            out.ratios.miss_rate < 1.0,
            "miss rate should drop: {}",
            out.ratios.miss_rate
        );
    }

    #[test]
    fn lower_threshold_means_more_traffic_and_more_savings() {
        let (trace, topo) = setup(202);
        let sim = SpecSim::new(&trace, &topo);
        let conservative = sim.run(&cfg(0.8)).unwrap();
        let aggressive = sim.run(&cfg(0.1)).unwrap();
        assert!(
            aggressive.ratios.bandwidth >= conservative.ratios.bandwidth,
            "aggressive speculation must cost at least as much traffic"
        );
        assert!(
            aggressive.ratios.server_load <= conservative.ratios.server_load + 1e-9,
            "aggressive speculation must save at least as much load"
        );
    }

    #[test]
    fn diminishing_returns_of_aggressive_speculation() {
        // The paper's headline shape: the first percent of extra traffic
        // buys far more load reduction than the last.
        let (trace, topo) = setup(203);
        let sim = SpecSim::new(&trace, &topo);
        let mid = sim.run(&cfg(0.5)).unwrap();
        let aggr = sim.run(&cfg(0.05)).unwrap();
        let eff = |o: &SpecOutcome| {
            let extra = (o.ratios.bandwidth - 1.0).max(1e-9);
            (1.0 - o.ratios.server_load) / extra
        };
        assert!(
            eff(&mid) > eff(&aggr),
            "efficiency should fall with aggression: mid {} aggr {}",
            eff(&mid),
            eff(&aggr)
        );
    }

    #[test]
    fn embedding_only_is_nearly_traffic_neutral() {
        let (trace, topo) = setup(204);
        let sim = SpecSim::new(&trace, &topo);
        let mut c = cfg(0.5);
        c.policy = Policy::EmbeddingOnly;
        let out = sim.run(&c).unwrap();
        // Pushing only certain dependencies wastes almost nothing: the
        // only waste is re-pushing *shared* icons the client already
        // cached via another page, and icons are a few hundred bytes.
        assert!(
            out.ratios.bandwidth < 1.08,
            "embedding-only should be ≈ traffic neutral, got {}",
            out.ratios.bandwidth
        );
        // …and still saves some load (the <5% the paper reports).
        assert!(out.ratios.server_load <= 1.0);
    }

    #[test]
    fn cooperative_clients_save_bandwidth_not_lose_load() {
        let (trace, topo) = setup(205);
        let sim = SpecSim::new(&trace, &topo);
        let mut plain = cfg(0.2);
        plain.cache = CacheModel::Session {
            timeout: specweb_core::time::Duration::from_secs(3_600),
        };
        let mut coop = plain;
        coop.cooperative = true;
        let p = sim.run(&plain).unwrap();
        let c = sim.run(&coop).unwrap();
        assert_eq!(c.wasted_pushes, 0, "cooperative clients never waste");
        assert!(
            c.ratios.bandwidth <= p.ratios.bandwidth + 1e-9,
            "cooperation must not increase traffic: {} vs {}",
            c.ratios.bandwidth,
            p.ratios.bandwidth
        );
        assert!(
            (c.ratios.server_load - p.ratios.server_load).abs() < 0.02,
            "cooperation should barely affect load: {} vs {}",
            c.ratios.server_load,
            p.ratios.server_load
        );
    }

    #[test]
    fn max_size_caps_traffic() {
        let (trace, topo) = setup(206);
        let sim = SpecSim::new(&trace, &topo);
        let unlimited = sim.run(&cfg(0.2)).unwrap();
        let mut small = cfg(0.2);
        small.max_size = Bytes::from_kib(8);
        let capped = sim.run(&small).unwrap();
        assert!(
            capped.ratios.bandwidth <= unlimited.ratios.bandwidth,
            "MaxSize must not increase traffic"
        );
    }

    #[test]
    fn gains_persist_without_long_term_cache() {
        // §3.4: "possible even in the absence of any long-term client
        // cache" — i.e. with only a short-lived session cache to hold
        // the pushed documents.
        let (trace, topo) = setup(207);
        let sim = SpecSim::new(&trace, &topo);
        let mut c = cfg(0.3);
        c.cache = CacheModel::Session {
            timeout: specweb_core::time::Duration::from_secs(600),
        };
        let out = sim.run(&c).unwrap();
        assert!(
            out.ratios.server_load < 1.0,
            "speculation should still help without a long-term cache: {}",
            out.ratios.server_load
        );
        assert!(out.ratios.service_time < 1.0);
    }

    #[test]
    fn strict_no_cache_makes_speculation_useless() {
        // The theoretical endpoint: if the client discards even the
        // documents just pushed to it, speculation cannot help — only
        // cost bandwidth.
        let (trace, topo) = setup(207);
        let sim = SpecSim::new(&trace, &topo);
        let mut c = cfg(0.3);
        c.cache = CacheModel::None;
        let out = sim.run(&c).unwrap();
        assert!((out.ratios.server_load - 1.0).abs() < 1e-9);
        assert!(out.ratios.bandwidth >= 1.0);
    }

    #[test]
    fn session_cache_sits_between_none_and_infinite() {
        let (trace, topo) = setup(208);
        let sim = SpecSim::new(&trace, &topo);
        let run_with = |cache: CacheModel| {
            let mut c = cfg(0.3);
            c.cache = cache;
            sim.run(&c).unwrap()
        };
        let none = run_with(CacheModel::None);
        let session = run_with(CacheModel::Session {
            timeout: specweb_core::time::Duration::from_secs(3_600),
        });
        let inf = run_with(CacheModel::Infinite);
        // Absolute baseline load falls as caches grow.
        assert!(none.baseline.server_requests >= session.baseline.server_requests);
        assert!(session.baseline.server_requests >= inf.baseline.server_requests);
    }

    #[test]
    fn hybrid_hints_generate_prefetch_requests() {
        let (trace, topo) = setup(209);
        let sim = SpecSim::new(&trace, &topo);
        let mut c = cfg(0.3);
        c.policy = Policy::Hybrid {
            push_tp: 0.9,
            hint_tp: 0.2,
        };
        c.hint_policy = HintPolicy::Threshold { tp: 0.2 };
        let out = sim.run(&c).unwrap();
        assert!(out.prefetches > 0, "hints should trigger prefetches");
        // Prefetches count as server requests, so load reduction is
        // smaller than for pure pushes at the same coverage — but the
        // run must stay internally consistent.
        assert!(out.speculative.server_requests > 0);
    }

    #[test]
    fn client_profile_prefetch_runs() {
        // Re-traversals only exist across sessions, so the client needs
        // a session cache for profile prefetching to have work to do.
        let (trace, topo) = setup(210);
        let sim = SpecSim::new(&trace, &topo);
        let mut c = cfg(0.3);
        c.policy = Policy::TopK { k: 0, floor: 1.0 }; // no server pushes
        c.cache = CacheModel::Session {
            timeout: specweb_core::time::Duration::from_secs(3_600),
        };
        c.client_profile_prefetch = Some(0.5);
        let out = sim.run(&c).unwrap();
        assert!(
            out.prefetches > 0,
            "profile prefetching should fire on re-traversals"
        );
        // Miss rate should improve (re-traversals predicted)…
        assert!(out.ratios.miss_rate <= 1.0);
    }

    #[test]
    fn obs_records_per_policy_accounting() {
        use specweb_core::obs::{MetricValue, Obs};
        let (trace, topo) = setup(230);
        let obs = Obs::new();
        let sim = SpecSim::new(&trace, &topo).with_obs(&obs);
        let out = sim.run(&cfg(0.3)).unwrap();
        let snap = obs.snapshot();
        assert!(
            snap.wallclock.is_empty(),
            "replay metrics are deterministic"
        );
        let counter = |name: &str| match snap.deterministic.get(name) {
            Some(MetricValue::Counter { value }) => *value,
            other => panic!("missing counter {name}: {other:?}"),
        };
        assert_eq!(counter("spec.pushes"), out.pushes);
        assert_eq!(counter("spec.policy.threshold.pushes"), out.pushes);
        assert_eq!(counter("spec.pushes_wasted"), out.wasted_pushes);
        assert_eq!(counter("spec.accesses"), out.speculative.accesses);
        assert_eq!(
            counter("spec.server_requests"),
            out.speculative.server_requests
        );
        assert_eq!(
            counter("spec.baseline_requests"),
            out.baseline.server_requests
        );
        assert!(
            counter("spec.push_bytes") >= counter("spec.pushes_wasted_bytes"),
            "wasted bytes are a subset of pushed bytes"
        );
        assert!(counter("spec.cache_hits") > 0, "warm caches must hit");
        // The service-time distribution lands on the deterministic
        // channel as a log₂-bucketed histogram, total mass = accesses.
        for name in [
            "spec.service_time_ms",
            "spec.policy.threshold.service_time_ms",
            "spec.baseline.service_time_ms",
        ] {
            match snap.deterministic.get(name) {
                Some(MetricValue::Histogram { bins, .. }) => {
                    assert!(bins.iter().sum::<u64>() > 0, "{name} histogram is empty");
                }
                other => panic!("missing histogram {name}: {other:?}"),
            }
        }

        // The same runs against a fresh registry must reproduce the
        // snapshot byte-for-byte: the channel is deterministic.
        let obs2 = Obs::new();
        let sim2 = SpecSim::new(&trace, &topo).with_obs(&obs2);
        sim2.run(&cfg(0.3)).unwrap();
        assert_eq!(obs2.snapshot(), snap);
    }

    #[test]
    fn obs_records_fault_log_once_per_degraded_run() {
        use specweb_core::obs::{MetricValue, Obs};
        let (trace, topo) = setup(231);
        let fcfg = fault_config(14);
        let plan =
            FaultPlan::generate(&specweb_core::rng::SeedTree::new(77), &topo, &fcfg).unwrap();
        let obs = Obs::new();
        let sim = SpecSim::new(&trace, &topo).with_obs(&obs);
        sim.run_with_faults(&cfg(0.3), &plan, RetrySchedule::default())
            .unwrap();
        assert_eq!(
            obs.snapshot().deterministic["netsim.faults_injected"],
            MetricValue::Counter {
                value: plan.n_windows() as u64
            },
            "one fault log per run, not per replay"
        );
    }

    #[test]
    fn deterministic() {
        let (trace, topo) = setup(211);
        let sim = SpecSim::new(&trace, &topo);
        let a = sim.run(&cfg(0.3)).unwrap();
        let b = sim.run(&cfg(0.3)).unwrap();
        assert_eq!(a.speculative, b.speculative);
        assert_eq!(a.baseline, b.baseline);
    }

    #[test]
    fn conservation_laws() {
        let (trace, topo) = setup(212);
        let sim = SpecSim::new(&trace, &topo);
        let out = sim.run(&cfg(0.3)).unwrap();
        for run in [&out.speculative, &out.baseline] {
            assert!(run.bytes_sent >= run.miss_bytes, "sent ≥ missed");
            assert!(run.accessed_bytes >= run.miss_bytes);
            assert!(run.accesses >= run.server_requests - out.prefetches);
        }
        // Both replays see the same client demand.
        assert_eq!(out.speculative.accesses, out.baseline.accesses);
        assert_eq!(out.speculative.accessed_bytes, out.baseline.accessed_bytes);
        // Costs are consistent with the weights.
        assert!(out.cost_speculative > 0.0 && out.cost_baseline > 0.0);
    }

    #[test]
    fn rejects_mismatched_matrix_store() {
        use crate::estimator::MatrixStore;
        let (trace, topo) = setup(214);
        let sim = SpecSim::new(&trace, &topo);
        let cfg_a = cfg(0.3);
        let store = MatrixStore::precompute(&cfg_a.estimator, &trace, 14).unwrap();
        // Same config works…
        assert!(sim.run_with_store(&cfg_a, Some(&store)).is_ok());
        // …a different estimator config is rejected.
        let mut cfg_b = cfg_a;
        cfg_b.estimator.history_days += 1;
        assert!(sim.run_with_store(&cfg_b, Some(&store)).is_err());
    }

    #[test]
    fn sharded_replay_equals_serial_replay() {
        // The per-cluster shards must merge to exactly what a single
        // full-order pass produces — speculative, baseline, and faulted.
        // Sharding only engages with >1 worker; output is identical at
        // any width, so pinning the process default is side-effect-free.
        specweb_core::par::set_default_jobs(2);
        let (trace, topo) = setup(240);
        let sim = SpecSim::new(&trace, &topo);
        assert!(sim.shards.len() > 1, "topology must yield several shards");
        let c = cfg(0.3);
        let store = MatrixStore::precompute(&c.estimator, &trace, 14).unwrap();
        for speculate in [true, false] {
            let serial = sim
                .replay_shard(&c, speculate, Some(&store), None, trace.accesses.iter())
                .unwrap();
            let sharded = sim.replay(&c, speculate, Some(&store), None).unwrap();
            assert_eq!(serial.0, sharded.0, "totals diverge (spec={speculate})");
            assert_eq!(serial.1, sharded.1, "counters diverge (spec={speculate})");
        }
        // Under faults too: the plan is read-only, so shards see the
        // same outage windows a serial replay would.
        let plan = FaultPlan::generate(
            &specweb_core::rng::SeedTree::new(991),
            &topo,
            &fault_config(14),
        )
        .unwrap();
        let ctx = FaultCtx {
            plan: &plan,
            retry: RetrySchedule::default(),
        };
        let serial = sim
            .replay_shard(&c, false, None, Some(&ctx), trace.accesses.iter())
            .unwrap();
        let sharded = sim.replay(&c, false, None, Some(&ctx)).unwrap();
        assert_eq!(serial.0, sharded.0);
        assert_eq!(serial.1, sharded.1);
    }

    #[test]
    fn baseline_reuse_is_exact() {
        // The demand replay depends only on trace + cache + warmup, so a
        // precomputed baseline must reproduce the inline one exactly —
        // including across policy changes, which is what lets sweeps
        // share one baseline replay.
        let (trace, topo) = setup(241);
        let sim = SpecSim::new(&trace, &topo);
        let c = cfg(0.3);
        let store = MatrixStore::precompute(&c.estimator, &trace, 14).unwrap();
        let inline = sim.run_with_store(&c, Some(&store)).unwrap();
        let base = sim.baseline_totals(&c).unwrap();
        let reused = sim
            .run_with_store_and_baseline(&c, Some(&store), Some(&base))
            .unwrap();
        assert_eq!(
            serde_json::to_string(&inline).unwrap(),
            serde_json::to_string(&reused).unwrap()
        );
        let mut c2 = c;
        c2.policy = Policy::TopK { k: 3, floor: 0.2 };
        let inline2 = sim.run_with_store(&c2, Some(&store)).unwrap();
        let reused2 = sim
            .run_with_store_and_baseline(&c2, Some(&store), Some(&base))
            .unwrap();
        assert_eq!(
            serde_json::to_string(&inline2).unwrap(),
            serde_json::to_string(&reused2).unwrap()
        );
    }

    #[test]
    fn service_time_quantiles_are_jobs_invariant() {
        // The ISSUE's golden property: the exact quantile summary — an
        // order statistic over every served access — must serialize
        // byte-identically whether the replay ran serially or sharded
        // over four workers. Pinning the process default is
        // side-effect-free for the same reason as above.
        let (trace, topo) = setup(242);
        let sim = SpecSim::new(&trace, &topo);
        assert!(sim.shards.len() > 1, "topology must yield several shards");
        let c = cfg(0.3);
        let store = MatrixStore::precompute(&c.estimator, &trace, 14).unwrap();
        specweb_core::par::set_default_jobs(1);
        let serial = sim.run_with_store(&c, Some(&store)).unwrap();
        specweb_core::par::set_default_jobs(4);
        let parallel = sim.run_with_store(&c, Some(&store)).unwrap();
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "service-time quantiles diverged across --jobs"
        );
        // Every measured access was served (no faults), so the summary
        // covers all of them; hits at 0 ms drag the median below the
        // miss-dominated mean.
        assert_eq!(serial.service_times.count, serial.speculative.accesses);
        assert!(serial.service_times.p50_ms <= serial.service_times.p99_ms);
        assert!(serial.service_times.max_ms > 0);
        // Speculation turns misses into hits, so the speculative tail
        // sits at or below the baseline tail.
        assert!(serial.service_times.p90_ms <= serial.baseline_service_times.p90_ms);
    }

    #[test]
    fn rejects_invalid_policy() {
        let (trace, topo) = setup(213);
        let sim = SpecSim::new(&trace, &topo);
        let mut c = cfg(0.3);
        c.policy = Policy::Threshold { tp: 0.0 };
        assert!(sim.run(&c).is_err());
    }

    fn fault_config(days: u64) -> specweb_netsim::FaultConfig {
        specweb_netsim::FaultConfig::light(specweb_core::time::Duration::from_days(days))
    }

    #[test]
    fn faulted_replay_is_bit_for_bit_deterministic() {
        let (trace, topo) = setup(220);
        let sim = SpecSim::new(&trace, &topo);
        let seed = specweb_core::rng::SeedTree::new(1009);
        let fcfg = fault_config(14);
        let plan_a = FaultPlan::generate(&seed, &topo, &fcfg).unwrap();
        let plan_b = FaultPlan::generate(&seed, &topo, &fcfg).unwrap();
        let retry = RetrySchedule::default();
        let a = sim.run_with_faults(&cfg(0.3), &plan_a, retry).unwrap();
        let b = sim.run_with_faults(&cfg(0.3), &plan_b, retry).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn faults_reduce_availability_but_not_below_reason() {
        let (trace, topo) = setup(221);
        let sim = SpecSim::new(&trace, &topo);
        // Harsh link faults: down half the time on average.
        let mut fcfg = fault_config(14);
        fcfg.link.mean_up = specweb_core::time::Duration::from_days(1);
        fcfg.link.mean_down = specweb_core::time::Duration::from_secs(12 * 3600);
        let plan =
            FaultPlan::generate(&specweb_core::rng::SeedTree::new(1013), &topo, &fcfg).unwrap();
        let c = cfg(0.3);
        let healthy = sim.run(&c).unwrap();
        let degraded = sim
            .run_with_faults(&c, &plan, RetrySchedule::default())
            .unwrap();
        assert!(
            degraded.unavailable > 0,
            "harsh faults must strand requests"
        );
        assert!(degraded.retries >= degraded.unavailable);
        assert!(degraded.availability < 1.0 && degraded.availability > 0.2);
        // Unserved misses never reach the server.
        assert!(degraded.outcome.speculative.server_requests < healthy.speculative.server_requests);
        // Both replays face the same plan; the baseline has more misses,
        // hence at least as much fault exposure.
        assert!(degraded.baseline_retries >= degraded.retries);
    }

    #[test]
    fn no_faults_matches_the_healthy_run() {
        let (trace, topo) = setup(222);
        let sim = SpecSim::new(&trace, &topo);
        let c = cfg(0.3);
        let healthy = sim.run(&c).unwrap();
        let degraded = sim
            .run_with_faults(&c, &FaultPlan::none(), RetrySchedule::default())
            .unwrap();
        assert_eq!(degraded.unavailable, 0);
        assert_eq!(degraded.retries, 0);
        assert_eq!(degraded.availability, 1.0);
        assert_eq!(degraded.outcome.speculative, healthy.speculative);
        assert_eq!(degraded.outcome.baseline, healthy.baseline);
        assert_eq!(degraded.stalled, 0);
        assert_eq!(degraded.slow_served, 0);
        assert_eq!(degraded.partial_write_pushes, 0);
    }

    #[test]
    fn client_side_chaos_surfaces_in_the_degraded_outcome() {
        let (trace, topo) = setup(223);
        let sim = SpecSim::new(&trace, &topo);
        let horizon = specweb_core::time::Duration::from_days(14);
        let chaotic = specweb_netsim::FaultConfig::chaotic(horizon);
        let plan =
            FaultPlan::generate(&specweb_core::rng::SeedTree::new(1021), &topo, &chaotic).unwrap();
        let c = cfg(0.3);
        let healthy = sim.run(&c).unwrap();
        let degraded = sim
            .run_with_faults(&c, &plan, RetrySchedule::default())
            .unwrap();
        // The chaotic preset keeps each leaf degraded for a sizable
        // fraction of the horizon: every client-side class must leave a
        // visible mark in the outcome.
        assert!(degraded.stalled > 0, "no stalls surfaced");
        assert!(degraded.stall_wait_ms > 0, "stalls cost no time");
        assert!(degraded.slow_served > 0, "no slow-client serves surfaced");
        // The degraded classes expose their own service-time tails:
        // every *served* stalled/slow access contributes one sample, and
        // a deferred or slowed fetch can never be instant.
        assert!(degraded.stalled_service_times.count <= degraded.stalled);
        assert!(degraded.stalled_service_times.count > 0);
        assert!(degraded.stalled_service_times.p50_ms > 0.0);
        assert_eq!(degraded.slow_service_times.count, degraded.slow_served);
        assert!(degraded.slow_service_times.p50_ms > 0.0);
        assert!(
            degraded.partial_write_pushes > 0,
            "no partial-write pushes surfaced"
        );
        // Truncated pushes are re-sent, so the degraded replay moves
        // strictly more bytes than the healthy one; deferred and slowed
        // fetches make it strictly slower.
        assert!(
            degraded.outcome.speculative.bytes_sent > healthy.speculative.bytes_sent,
            "re-sent pushes must inflate traffic"
        );
        assert!(degraded.outcome.speculative.latency_ms > healthy.speculative.latency_ms);
        // Bit-for-bit determinism holds with the new classes active.
        let again = sim
            .run_with_faults(&c, &plan, RetrySchedule::default())
            .unwrap();
        assert_eq!(
            serde_json::to_string(&degraded).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
        // The light preset keeps every client-side counter at zero, so
        // the committed degraded-mode experiments are untouched.
        let light = FaultPlan::generate(
            &specweb_core::rng::SeedTree::new(1021),
            &topo,
            &fault_config(14),
        )
        .unwrap();
        let quiet = sim
            .run_with_faults(&c, &light, RetrySchedule::default())
            .unwrap();
        assert_eq!(quiet.stalled, 0);
        assert_eq!(quiet.stall_wait_ms, 0);
        assert_eq!(quiet.slow_served, 0);
        assert_eq!(quiet.partial_write_pushes, 0);
    }
}
