//! Document access interdependencies (§3.1).
//!
//! `p[i,j]` is the conditional probability that `D_j` is requested
//! within a window `T_w` of a request for `D_i`, estimated per client
//! from the server log. The paper distinguishes *embedding* dependencies
//! (`p = 1`: inline objects) from *traversal* dependencies (`p ≈ 1/k`:
//! one of a page's `k` anchors).
//!
//! `P*` is the closure: the probability of a **request sequence** from
//! `D_i` to `D_j` with every hop inside `T_w` of its predecessor. The
//! paper writes `P* = P^N`; taken literally over (+, ×) that sum can
//! exceed 1, so we compute the standard probabilistic reading — the
//! **max-product** path probability (the best chain), which is the
//! fixpoint of `P` over the (max, ×) semiring, keeps every entry in
//! `[0, 1]`, dominates `P` entrywise, and equals `P^N` on the chain
//! structures (embedding trees) the closure exists for.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};
use specweb_core::ids::{ClientId, DocId};
use specweb_core::stats::Histogram;
use specweb_core::time::Duration;
use specweb_core::{CoreError, Result};
use specweb_trace::generator::Access;

/// A sparse row-compressed conditional-probability matrix.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DepMatrix {
    /// `rows[i]` = sorted `(j, p)` entries with `p > 0`. A BTreeMap so
    /// that [`DepMatrix::entries`] and serde output are id-ordered: the
    /// matrix is a *result* container, and results must not depend on
    /// hash iteration order.
    rows: BTreeMap<DocId, Vec<(DocId, f64)>>,
    /// Rows whose best-path search hit the safety valve during
    /// [`DepMatrix::closure`] — those rows may under-report `P*` reach.
    /// Zero for directly-estimated matrices. Surfaced (never silently
    /// dropped) so sweeps can tell a pruned closure from a complete one.
    truncated_rows: u64,
}

impl DepMatrix {
    /// An empty matrix (speculation finds no candidates).
    pub fn empty() -> Self {
        DepMatrix::default()
    }

    /// The probability `p[i,j]` (0 when absent).
    pub fn get(&self, i: DocId, j: DocId) -> f64 {
        self.rows
            .get(&i)
            .and_then(|row| {
                row.binary_search_by(|(d, _)| d.cmp(&j))
                    .ok()
                    .map(|k| row[k].1)
            })
            .unwrap_or(0.0)
    }

    /// The non-zero entries of row `i`, sorted by document id.
    pub fn row(&self, i: DocId) -> &[(DocId, f64)] {
        self.rows.get(&i).map_or(&[], |r| r.as_slice())
    }

    /// Number of non-empty rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total number of stored entries.
    pub fn n_entries(&self) -> usize {
        self.rows.values().map(Vec::len).sum()
    }

    /// Rows whose closure search hit the safety valve (0 for direct
    /// matrices). A non-zero value means `P*` reach is under-reported
    /// for those sources; callers running sweeps should surface it.
    pub fn truncated_rows(&self) -> u64 {
        self.truncated_rows
    }

    /// Iterates over all `(i, j, p)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (DocId, DocId, f64)> + '_ {
        self.rows
            .iter()
            .flat_map(|(&i, row)| row.iter().map(move |&(j, p)| (i, j, p)))
    }

    /// Replaces the matrix contents wholesale (crate-internal: the aged
    /// estimator composes matrices outside the builder path). Rows are
    /// re-sorted to restore the binary-search invariant.
    pub(crate) fn replace_rows(&mut self, mut rows: BTreeMap<DocId, Vec<(DocId, f64)>>) {
        for row in rows.values_mut() {
            row.sort_by_key(|&(j, _)| j);
        }
        self.rows = rows;
    }

    /// Fig. 4: histogram of pair counts over `p[i,j]` ranges. Entries at
    /// exactly 1.0 (embedding dependencies) clamp into the top bin.
    pub fn probability_histogram(&self, nbins: usize) -> Histogram {
        let mut h = Histogram::new(0.0, 1.0, nbins);
        for (_, _, p) in self.entries() {
            h.push(p);
        }
        h
    }

    /// The max-product transitive closure `P*`, pruned: entries below
    /// `floor` are dropped (they can never pass a policy threshold
    /// `T_p ≥ floor`) and each row keeps at most `max_row` entries.
    ///
    /// Implemented as a best-path search (Dijkstra over `−ln p`) from
    /// each source row. Source rows are independent, so they are mapped
    /// in parallel on the process-default pool; path probabilities only
    /// decay, so the floor bounds the explored frontier tightly.
    ///
    /// Rows that hit the search's safety valve are **counted** in the
    /// result's [`DepMatrix::truncated_rows`] — the cap is never silent.
    pub fn closure(&self, floor: f64, max_row: usize) -> Result<DepMatrix> {
        self.closure_jobs(floor, max_row, specweb_core::par::default_jobs())
    }

    /// [`DepMatrix::closure`] with an explicit worker count. The output
    /// is byte-identical for every `jobs` value: each source row is a
    /// pure function of the matrix, and rows are assembled in a fixed
    /// (sorted-source) order.
    pub fn closure_jobs(&self, floor: f64, max_row: usize, jobs: usize) -> Result<DepMatrix> {
        if !(0.0 < floor && floor <= 1.0) {
            return Err(CoreError::invalid_config(
                "closure.floor",
                format!("must be in (0, 1], got {floor}"),
            ));
        }
        let mut srcs: Vec<DocId> = self.rows.keys().copied().collect();
        srcs.sort_unstable();
        let pool = specweb_core::par::Pool::new(jobs);
        let computed = pool.map_indexed(&srcs, |_, &src| self.best_paths_from(src, floor, max_row));
        let mut out = BTreeMap::new();
        let mut truncated_rows = 0u64;
        for (&src, (row, truncated)) in srcs.iter().zip(computed) {
            if truncated {
                truncated_rows += 1;
            }
            if !row.is_empty() {
                out.insert(src, row);
            }
        }
        Ok(DepMatrix {
            rows: out,
            truncated_rows,
        })
    }

    /// Best path probability from `src` to every reachable doc ≥ floor,
    /// plus whether the search hit the safety valve (in which case the
    /// row may under-report reach).
    fn best_paths_from(&self, src: DocId, floor: f64, max_row: usize) -> (Vec<(DocId, f64)>, bool) {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        // Max-heap on probability.
        struct Item(f64, DocId);
        impl PartialEq for Item {
            fn eq(&self, o: &Self) -> bool {
                self.0 == o.0 && self.1 == o.1
            }
        }
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Item {
            fn cmp(&self, o: &Self) -> Ordering {
                // total_cmp: a NaN probability (degenerate estimate)
                // must not abort a whole sweep mid-search.
                self.0.total_cmp(&o.0).then(self.1.cmp(&o.1))
            }
        }

        let mut best: HashMap<DocId, f64> = HashMap::new();
        let mut heap = BinaryHeap::new();
        heap.push(Item(1.0, src));
        let mut settled: HashMap<DocId, f64> = HashMap::new();
        let mut truncated = false;
        while let Some(Item(p, d)) = heap.pop() {
            if settled.contains_key(&d) {
                continue;
            }
            settled.insert(d, p);
            if settled.len() > max_row.saturating_mul(4) + 1 {
                truncated = true; // safety valve for pathological graphs
                break;
            }
            for &(j, pj) in self.row(d) {
                let cand = p * pj;
                if cand < floor || j == src {
                    continue;
                }
                let e = best.entry(j).or_insert(0.0);
                if cand > *e {
                    *e = cand;
                    heap.push(Item(cand, j));
                }
            }
        }
        settled.remove(&src);
        // lint:allow(G1): the hash-order stream is materialized here and
        // fully re-sorted below with a total, id-tiebroken order before
        // anything downstream can observe it.
        let mut row: Vec<(DocId, f64)> = settled.into_iter().collect();
        // Keep the strongest max_row entries, then restore id order.
        // Ties on probability break by id: the pre-sort order is HashMap
        // iteration order (randomized per process), and a stable sort
        // alone would let the truncation keep a different tied subset on
        // every run.
        row.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        row.truncate(max_row);
        row.sort_by_key(|&(j, _)| j);
        (row, truncated)
    }
}

/// Streaming estimator for `P` from a time-ordered access sequence.
///
/// For each occurrence of `D_i`, the set of *distinct* documents the
/// same client requests within the next `T_w` is recorded once; `p[i,j]`
/// is then `follows(i→j) / occurrences(i)`.
///
/// ```
/// use specweb_core::ids::{ClientId, DocId, ServerId};
/// use specweb_core::time::{Duration, SimTime};
/// use specweb_spec::deps::DepMatrixBuilder;
/// use specweb_trace::clients::Locality;
/// use specweb_trace::generator::Access;
///
/// let acc = |doc: u32, ms: u64| Access {
///     time: SimTime::from_millis(ms),
///     client: ClientId::new(0),
///     doc: DocId::new(doc),
///     server: ServerId::new(0),
///     locality: Locality::Remote,
///     session: 0,
/// };
/// // Doc 1 is always followed by doc 2 within the 5 s window.
/// let trace = vec![acc(1, 0), acc(2, 100), acc(1, 60_000), acc(2, 60_100)];
/// let p = DepMatrixBuilder::estimate(&trace, Duration::from_secs(5), 1);
/// assert_eq!(p.get(DocId::new(1), DocId::new(2)), 1.0);
/// assert_eq!(p.get(DocId::new(2), DocId::new(1)), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DepMatrixBuilder {
    window: Duration,
    /// Per-client recent accesses still inside the window. Each pending
    /// occurrence of `i` remembers which followers it has already
    /// counted, so `p[i,j]` is the fraction of `i`-occurrences followed
    /// by **at least one** `j` — not a raw pair count.
    pending: HashMap<ClientId, Vec<PendingAccess>>,
    occurrences: HashMap<DocId, u64>,
    follows: HashMap<(DocId, DocId), u64>,
}

/// One not-yet-expired access of the streaming estimator.
#[derive(Debug, Clone)]
struct PendingAccess {
    time: specweb_core::time::SimTime,
    doc: DocId,
    /// Followers already counted for this occurrence (windows hold a
    /// handful of accesses, so linear scans beat a hash set here).
    counted: Vec<DocId>,
}

impl DepMatrixBuilder {
    /// Creates a builder with dependency window `window` (`T_w`).
    pub fn new(window: Duration) -> Self {
        DepMatrixBuilder {
            window,
            pending: Default::default(),
            occurrences: Default::default(),
            follows: Default::default(),
        }
    }

    /// Feeds one access (must be fed in time order per client).
    pub fn push(&mut self, access: &Access) {
        let q = self.pending.entry(access.client).or_default();
        // Retire accesses that fell out of the window, then record the
        // i→j pairs the new access completes (once per i-occurrence).
        let window = self.window;
        q.retain(|p| window.is_infinite() || access.time.since(p.time) < window);
        for p in q.iter_mut() {
            if p.doc != access.doc && !p.counted.contains(&access.doc) {
                p.counted.push(access.doc);
                *self.follows.entry((p.doc, access.doc)).or_insert(0) += 1;
            }
        }
        *self.occurrences.entry(access.doc).or_insert(0) += 1;
        q.push(PendingAccess {
            time: access.time,
            doc: access.doc,
            counted: Vec::new(),
        });
    }

    /// Feeds a whole slice of accesses.
    pub fn push_all(&mut self, accesses: &[Access]) {
        for a in accesses {
            self.push(a);
        }
    }

    /// Finalizes into a `DepMatrix`. `min_support` drops pairs whose
    /// antecedent was seen fewer than that many times (tiny samples
    /// produce wild probabilities — the paper's curves are built from
    /// >50k accesses).
    pub fn build(&self, min_support: u64) -> DepMatrix {
        let mut rows: BTreeMap<DocId, Vec<(DocId, f64)>> = BTreeMap::new();
        // lint:allow(G1): iteration order lands in per-id BTreeMap rows
        // that are re-sorted (probability desc, id asc) before truncation,
        // so the hash order cannot reach the returned matrix.
        for (&(i, j), &n) in &self.follows {
            let occ = *self.occurrences.get(&i).unwrap_or(&0);
            if occ < min_support.max(1) {
                continue;
            }
            // A document can be re-requested more often than its
            // antecedent when loops exist; cap at 1.
            let p = (n as f64 / occ as f64).min(1.0);
            rows.entry(i).or_default().push((j, p));
        }
        for row in rows.values_mut() {
            row.sort_by_key(|&(j, _)| j);
        }
        DepMatrix {
            rows,
            truncated_rows: 0,
        }
    }

    /// Convenience: estimate `P` from a full access slice in one call.
    pub fn estimate(accesses: &[Access], window: Duration, min_support: u64) -> DepMatrix {
        let mut b = DepMatrixBuilder::new(window);
        b.push_all(accesses);
        b.build(min_support)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specweb_core::ids::ServerId;
    use specweb_core::time::SimTime;
    use specweb_trace::clients::Locality;

    fn acc(client: u32, doc: u32, t_ms: u64) -> Access {
        Access {
            time: SimTime::from_millis(t_ms),
            client: ClientId::new(client),
            doc: DocId::new(doc),
            server: ServerId::new(0),
            locality: Locality::Remote,
            session: 0,
        }
    }

    const W: Duration = Duration::from_millis(5_000);

    #[test]
    fn embedding_dependency_is_probability_one() {
        // Doc 1 always followed by doc 2 within the window.
        let mut accesses = Vec::new();
        for k in 0..10 {
            accesses.push(acc(k, 1, 1_000_000 * u64::from(k)));
            accesses.push(acc(k, 2, 1_000_000 * u64::from(k) + 100));
        }
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        assert!((m.get(DocId(1), DocId(2)) - 1.0).abs() < 1e-12);
        assert_eq!(m.get(DocId(2), DocId(1)), 0.0);
    }

    #[test]
    fn traversal_dependency_is_fractional() {
        // Doc 1 followed by doc 2 half the time, doc 3 the other half.
        let mut accesses = Vec::new();
        for k in 0..20u32 {
            let t = 1_000_000 * u64::from(k);
            accesses.push(acc(k, 1, t));
            accesses.push(acc(k, if k % 2 == 0 { 2 } else { 3 }, t + 200));
        }
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        assert!((m.get(DocId(1), DocId(2)) - 0.5).abs() < 1e-12);
        assert!((m.get(DocId(1), DocId(3)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_cuts_dependencies() {
        let accesses = vec![acc(0, 1, 0), acc(0, 2, 6_000)]; // 6 s > 5 s window
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        assert_eq!(m.get(DocId(1), DocId(2)), 0.0);
        let m = DepMatrixBuilder::estimate(&accesses, Duration::from_secs(10), 1);
        assert!(m.get(DocId(1), DocId(2)) > 0.0);
    }

    #[test]
    fn cross_client_pairs_do_not_count() {
        let accesses = vec![acc(0, 1, 0), acc(1, 2, 100)];
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        assert_eq!(m.get(DocId(1), DocId(2)), 0.0);
    }

    #[test]
    fn duplicate_follow_in_one_window_counts_once_per_antecedent() {
        // i at t=0; j at 100 and 200 (both inside the window): one
        // occurrence of i followed by j ⇒ p[i,j] is exactly 1, not 2.
        let accesses = vec![acc(0, 1, 0), acc(0, 2, 100), acc(0, 2, 200)];
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        assert!((m.get(DocId(1), DocId(2)) - 1.0).abs() < 1e-12);

        // Two occurrences of i, only one followed by j ⇒ p = 0.5 even
        // though j appeared twice in the first window.
        let accesses = vec![
            acc(0, 1, 0),
            acc(0, 2, 100),
            acc(0, 2, 200),
            acc(0, 1, 1_000_000),
            acc(0, 3, 1_000_100),
        ];
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        assert!((m.get(DocId(1), DocId(2)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_support_filters_rare_antecedents() {
        let accesses = vec![acc(0, 1, 0), acc(0, 2, 100)];
        let m = DepMatrixBuilder::estimate(&accesses, W, 5);
        assert_eq!(m.get(DocId(1), DocId(2)), 0.0);
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        assert!(m.get(DocId(1), DocId(2)) > 0.0);
    }

    #[test]
    fn probabilities_are_bounded() {
        // Loops: 1→2→1→2… within windows could overcount; the cap holds.
        let mut accesses = Vec::new();
        for k in 0..40 {
            accesses.push(acc(0, 1 + (k % 2), u64::from(k) * 1_000));
        }
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        for (_, _, p) in m.entries() {
            assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        }
    }

    #[test]
    fn closure_includes_transitive_chains() {
        // 1 →(1.0) 2 →(0.5) 3: closure must contain 1→3 at 0.5.
        let mut accesses = Vec::new();
        for k in 0..20u32 {
            let t = 1_000_000 * u64::from(k);
            accesses.push(acc(k, 1, t));
            accesses.push(acc(k, 2, t + 100));
            if k % 2 == 0 {
                // within window of doc 2 but NOT of doc 1
                accesses.push(acc(k, 3, t + 4_500));
            }
        }
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        assert!((m.get(DocId(1), DocId(2)) - 1.0).abs() < 1e-9);
        assert!((m.get(DocId(2), DocId(3)) - 0.5).abs() < 1e-9);
        // 3 arrives 4.5 s after 1 — still within T_w, so the direct pair
        // exists too; the closure keeps the max.
        let c = m.closure(0.01, 64).unwrap();
        assert!(c.get(DocId(1), DocId(3)) >= 0.5 - 1e-9);
    }

    #[test]
    fn closure_dominates_direct_matrix() {
        let mut accesses = Vec::new();
        for k in 0..30u32 {
            let t = 1_000_000 * u64::from(k);
            accesses.push(acc(k, 1, t));
            accesses.push(acc(k, if k % 3 == 0 { 2 } else { 3 }, t + 100));
            accesses.push(acc(k, 4, t + 300));
        }
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        let c = m.closure(0.001, 64).unwrap();
        for (i, j, p) in m.entries() {
            assert!(
                c.get(i, j) >= p - 1e-12,
                "closure lost mass at ({i},{j}): {p} → {}",
                c.get(i, j)
            );
        }
    }

    #[test]
    fn closure_entries_in_unit_interval_and_no_self() {
        let mut accesses = Vec::new();
        for k in 0..50 {
            accesses.push(acc(0, k % 5, u64::from(k) * 800));
        }
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        let c = m.closure(0.05, 16).unwrap();
        for (i, j, p) in c.entries() {
            assert!((0.0..=1.0).contains(&p));
            assert_ne!(i, j, "closure must not contain self-dependencies");
        }
    }

    #[test]
    fn closure_is_idempotent() {
        let mut accesses = Vec::new();
        for k in 0..20u32 {
            let t = 1_000_000 * u64::from(k);
            accesses.push(acc(k, 1, t));
            accesses.push(acc(k, 2, t + 100));
            accesses.push(acc(k, 3, t + 200));
        }
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        let c1 = m.closure(0.01, 64).unwrap();
        let c2 = c1.closure(0.01, 64).unwrap();
        for (i, j, p) in c1.entries() {
            assert!(
                (c2.get(i, j) - p).abs() < 1e-9,
                "closure not idempotent at ({i},{j})"
            );
        }
    }

    #[test]
    fn closure_floor_prunes() {
        let mut accesses = Vec::new();
        for k in 0..100u32 {
            let t = 1_000_000 * u64::from(k);
            accesses.push(acc(k, 1, t));
            accesses.push(acc(k, 2 + (k % 10), t + 100)); // p = 0.1 each
        }
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        let c = m.closure(0.5, 64).unwrap();
        assert_eq!(c.n_entries(), 0, "all entries below the floor");
        let c = m.closure(0.05, 64).unwrap();
        assert_eq!(c.row(DocId(1)).len(), 10);
    }

    #[test]
    fn closure_counts_safety_valve_truncations() {
        // A dense clique: every doc links to every other with a high
        // probability, so each source can settle far more than
        // `max_row * 4 + 1` nodes. With a tiny max_row the valve must
        // fire — and be *counted*, not silent.
        let n = 30u32;
        let mut rows: BTreeMap<DocId, Vec<(DocId, f64)>> = BTreeMap::new();
        for i in 0..n {
            let row: Vec<(DocId, f64)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (DocId::new(j), 0.9))
                .collect();
            rows.insert(DocId::new(i), row);
        }
        let mut m = DepMatrix::empty();
        m.replace_rows(rows);
        assert_eq!(m.truncated_rows(), 0, "direct matrix is never truncated");
        let c = m.closure(0.01, 2).unwrap();
        assert_eq!(
            c.truncated_rows(),
            u64::from(n),
            "every clique row should hit the valve"
        );
        // A generous max_row settles everything without the valve.
        let c = m.closure(0.01, 64).unwrap();
        assert_eq!(c.truncated_rows(), 0);
    }

    #[test]
    fn closure_parallel_is_identical_to_serial() {
        let mut accesses = Vec::new();
        for k in 0..60 {
            accesses.push(acc(k % 4, k % 11, u64::from(k) * 700));
        }
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        let serial = m.closure_jobs(0.01, 32, 1).unwrap();
        for jobs in [2, 4, 8] {
            let par = m.closure_jobs(0.01, 32, jobs).unwrap();
            assert_eq!(par.n_rows(), serial.n_rows());
            assert_eq!(par.n_entries(), serial.n_entries());
            assert_eq!(par.truncated_rows(), serial.truncated_rows());
            for (i, j, p) in serial.entries() {
                assert_eq!(
                    par.get(i, j).to_bits(),
                    p.to_bits(),
                    "({i},{j}) jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn closure_truncation_breaks_probability_ties_by_id() {
        // One source links to 20 targets with the *same* probability.
        // With max_row = 5 the truncation must keep a deterministic
        // subset — the lowest ids — on every call. (The candidate list
        // materializes from a HashMap, whose iteration order is
        // randomized per instance; without an explicit id tie-break the
        // kept set would change from run to run.)
        let mut rows: BTreeMap<DocId, Vec<(DocId, f64)>> = BTreeMap::new();
        rows.insert(
            DocId::new(0),
            (1..=20).map(|j| (DocId::new(j), 0.5)).collect(),
        );
        let mut m = DepMatrix::empty();
        m.replace_rows(rows);
        let want: Vec<DocId> = (1..=5).map(DocId::new).collect();
        for _ in 0..8 {
            let c = m.closure(0.01, 5).unwrap();
            let kept: Vec<DocId> = c.row(DocId(0)).iter().map(|&(j, _)| j).collect();
            assert_eq!(kept, want, "tied entries must truncate id-low-first");
        }
    }

    #[test]
    fn closure_rejects_bad_floor() {
        let m = DepMatrix::empty();
        assert!(m.closure(0.0, 8).is_err());
        assert!(m.closure(1.5, 8).is_err());
    }

    #[test]
    fn histogram_shows_one_over_k_peaks() {
        // Build a synthetic log where pages have exactly 2 or 4 anchors
        // followed uniformly: the histogram must peak at 0.5 and 0.25.
        let mut accesses = Vec::new();
        let mut t = 0u64;
        for k in 0..400u32 {
            // page 1 (2 anchors: 10, 11), page 2 (4 anchors: 20..24).
            accesses.push(acc(k, 1, t));
            accesses.push(acc(k, 10 + (k % 2), t + 100));
            t += 1_000_000;
            accesses.push(acc(k, 2, t));
            accesses.push(acc(k, 20 + (k % 4), t + 100));
            t += 1_000_000;
        }
        let m = DepMatrixBuilder::estimate(&accesses, W, 1);
        let h = m.probability_histogram(20);
        let bins = h.bins();
        // p = 0.5 lands on the bin-10 boundary; p = 0.25 on bin 5.
        assert!(bins[10] >= 2, "no peak at 1/2: {bins:?}");
        assert!(bins[5] >= 4, "no peak at 1/4: {bins:?}");
    }

    #[test]
    fn empty_matrix_behaviour() {
        let m = DepMatrix::empty();
        assert_eq!(m.get(DocId(0), DocId(1)), 0.0);
        assert!(m.row(DocId(0)).is_empty());
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.n_entries(), 0);
        let c = m.closure(0.1, 8).unwrap();
        assert_eq!(c.n_entries(), 0);
    }

    #[test]
    fn infinite_window_links_whole_session() {
        let accesses = vec![acc(0, 1, 0), acc(0, 2, 10_000_000)];
        let m = DepMatrixBuilder::estimate(&accesses, Duration::INFINITE, 1);
        assert!(m.get(DocId(1), DocId(2)) > 0.0);
    }
}
