//! Speculation policies (§3.2, §3.4).
//!
//! When a request for `D_i` arrives, the policy decides which documents
//! to **push** along with `D_i` and which to merely **hint** (URLs
//! attached for client-side prefetching — §3.4's "server-assisted
//! prefetching"). The baseline policy is a simple threshold on the
//! closure, `p*[i,j] ≥ T_p`, subject to the `MaxSize` cap ("a document
//! is never speculatively serviced if its size is greater than
//! MaxSize").

use serde::{Deserialize, Serialize};
use specweb_core::ids::DocId;
use specweb_core::units::Bytes;
use specweb_core::{CoreError, Result};
use specweb_trace::document::Catalog;

use crate::deps::DepMatrix;

/// A speculation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Push every `j` with `p*[i,j] ≥ tp` — the paper's baseline.
    Threshold {
        /// The threshold probability `T_p ∈ (0, 1]`.
        tp: f64,
    },
    /// Like `Threshold` but on the direct matrix `P` (ablation: how much
    /// does the closure actually buy?).
    DirectThreshold {
        /// The threshold probability.
        tp: f64,
    },
    /// Push only the `k` most probable candidates above a floor.
    TopK {
        /// Maximum candidates to push.
        k: usize,
        /// Minimum probability to consider.
        floor: f64,
    },
    /// Push only (near-)certain dependencies — embedded documents
    /// (`p* ≈ 1`). The paper's observation: this costs *no* extra
    /// bandwidth but saves little.
    EmbeddingOnly,
    /// The §3.4 hybrid: push near-certain candidates, attach the rest
    /// (above `hint_tp`) as prefetch hints for the client to decide.
    Hybrid {
        /// Candidates at or above this probability are pushed.
        push_tp: f64,
        /// Candidates in `[hint_tp, push_tp)` are hinted.
        hint_tp: f64,
    },
}

impl Policy {
    /// The paper's baseline policy at a given `T_p`.
    pub fn baseline(tp: f64) -> Policy {
        Policy::Threshold { tp }
    }

    /// A short, stable label for per-policy metric names
    /// (`spec.policy.<label>.pushes` in the obs registry).
    pub fn kind_label(&self) -> &'static str {
        match self {
            Policy::Threshold { .. } => "threshold",
            Policy::DirectThreshold { .. } => "direct",
            Policy::TopK { .. } => "topk",
            Policy::EmbeddingOnly => "embedding",
            Policy::Hybrid { .. } => "hybrid",
        }
    }

    /// Validates the policy parameters.
    pub fn validate(&self) -> Result<()> {
        let check = |name: &'static str, p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(CoreError::invalid_config(
                    name,
                    format!("must be in [0, 1], got {p}"),
                ))
            }
        };
        match *self {
            Policy::Threshold { tp } | Policy::DirectThreshold { tp } => {
                if tp <= 0.0 {
                    return Err(CoreError::invalid_config(
                        "policy.tp",
                        "must be positive (T_p ∈ (0, 1])",
                    ));
                }
                check("policy.tp", tp)
            }
            Policy::TopK { floor, .. } => check("policy.floor", floor),
            Policy::EmbeddingOnly => Ok(()),
            Policy::Hybrid { push_tp, hint_tp } => {
                check("policy.push_tp", push_tp)?;
                check("policy.hint_tp", hint_tp)?;
                if hint_tp > push_tp {
                    return Err(CoreError::invalid_config(
                        "policy.hint_tp",
                        "hint threshold must not exceed push threshold",
                    ));
                }
                Ok(())
            }
        }
    }
}

/// The probability at which a dependency counts as an embedding
/// (certain) dependency. Estimation noise keeps measured `p` of true
/// embeddings slightly below 1.0.
pub const EMBEDDING_THRESHOLD: f64 = 0.95;

/// What the policy decided for one request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpecDecision {
    /// Documents to push, most probable first, with their probabilities.
    pub push: Vec<(DocId, f64)>,
    /// Documents to hint (hybrid policy only), most probable first.
    pub hints: Vec<(DocId, f64)>,
}

impl SpecDecision {
    /// Total bytes the pushes would add to the response.
    pub fn push_bytes(&self, catalog: &Catalog) -> Bytes {
        self.push.iter().map(|&(d, _)| catalog.size(d)).sum()
    }
}

/// Evaluates a policy for a request of `doc`.
///
/// `closure` is `P*`; `direct` is `P` (used by `DirectThreshold`).
/// Candidates larger than `max_size` are never pushed (they may still be
/// hinted — hinting costs bytes of URL, not of document). `exclude`
/// filters candidates known to be cached (cooperative clients).
pub fn decide(
    policy: &Policy,
    closure: &DepMatrix,
    direct: &DepMatrix,
    doc: DocId,
    catalog: &Catalog,
    max_size: Bytes,
    mut exclude: impl FnMut(DocId) -> bool,
) -> SpecDecision {
    let mut decision = SpecDecision::default();
    let fits = |d: DocId| max_size.is_infinite() || catalog.size(d) <= max_size;

    match *policy {
        Policy::Threshold { tp } => {
            for &(j, p) in closure.row(doc) {
                if p >= tp && fits(j) && !exclude(j) {
                    decision.push.push((j, p));
                }
            }
        }
        Policy::DirectThreshold { tp } => {
            for &(j, p) in direct.row(doc) {
                if p >= tp && fits(j) && !exclude(j) {
                    decision.push.push((j, p));
                }
            }
        }
        Policy::TopK { k, floor } => {
            let mut cands: Vec<(DocId, f64)> = closure
                .row(doc)
                .iter()
                .filter(|&&(j, p)| p >= floor && fits(j) && !exclude(j))
                .copied()
                .collect();
            cands.sort_by(|a, b| b.1.total_cmp(&a.1));
            cands.truncate(k);
            decision.push = cands;
        }
        Policy::EmbeddingOnly => {
            for &(j, p) in closure.row(doc) {
                if p >= EMBEDDING_THRESHOLD && fits(j) && !exclude(j) {
                    decision.push.push((j, p));
                }
            }
        }
        Policy::Hybrid { push_tp, hint_tp } => {
            for &(j, p) in closure.row(doc) {
                if exclude(j) {
                    continue;
                }
                if p >= push_tp && fits(j) {
                    decision.push.push((j, p));
                } else if p >= hint_tp {
                    decision.hints.push((j, p));
                }
            }
        }
    }
    decision.push.sort_by(|a, b| b.1.total_cmp(&a.1));
    decision.hints.sort_by(|a, b| b.1.total_cmp(&a.1));
    decision
}

#[cfg(test)]
mod tests {
    use super::*;
    use specweb_core::ids::{ClientId, ServerId};
    use specweb_core::time::{Duration, SimTime};
    use specweb_trace::clients::Locality;
    use specweb_trace::document::PopularityClass;
    use specweb_trace::generator::Access;

    /// A matrix where doc 0 leads to: 1 (p=1.0, small), 2 (p=0.6,
    /// small), 3 (p=0.6, huge), 4 (p=0.2, small).
    fn fixture() -> (DepMatrix, DepMatrix, Catalog) {
        let mut catalog = Catalog::new();
        let sizes = [1_000u64, 1_000, 1_000, 1_000_000, 1_000];
        for s in sizes {
            catalog.push(
                ServerId(0),
                Bytes::new(s),
                PopularityClass::Global,
                false,
                true,
            );
        }
        // 100 occurrences of doc 0, each followed (inside one window)
        // by: doc 1 always, docs 2 and 3 sixty times, doc 4 twenty.
        let mut accesses: Vec<Access> = Vec::new();
        let push = |accesses: &mut Vec<Access>, t: u64, client: u32, doc: u32| {
            accesses.push(Access {
                time: SimTime::from_millis(t),
                client: ClientId::new(client),
                doc: specweb_core::ids::DocId::new(doc),
                server: ServerId(0),
                locality: Locality::Remote,
                session: 0,
            });
        };
        let mut t = 0u64;
        for r in 0..100u32 {
            push(&mut accesses, t, r, 0);
            push(&mut accesses, t + 100, r, 1);
            if r < 60 {
                push(&mut accesses, t + 200, r, 2);
                push(&mut accesses, t + 300, r, 3);
            }
            if r < 20 {
                push(&mut accesses, t + 400, r, 4);
            }
            t += 1_000_000;
        }
        let direct = crate::deps::DepMatrixBuilder::estimate(&accesses, Duration::from_secs(5), 1);
        let closure = direct.closure(0.01, 64).unwrap();
        (closure, direct, catalog)
    }

    const NO_LIMIT: Bytes = Bytes::INFINITE;

    #[test]
    fn threshold_policy_filters_by_probability() {
        let (closure, direct, catalog) = fixture();
        let d = decide(
            &Policy::Threshold { tp: 0.5 },
            &closure,
            &direct,
            DocId(0),
            &catalog,
            NO_LIMIT,
            |_| false,
        );
        let ids: Vec<u32> = d.push.iter().map(|&(j, _)| j.raw()).collect();
        assert!(ids.contains(&1) && ids.contains(&2) && ids.contains(&3));
        assert!(!ids.contains(&4), "p=0.2 below threshold");
        // Ordered most probable first.
        assert_eq!(d.push[0].0, DocId(1));
    }

    #[test]
    fn tp_above_one_pushes_nothing() {
        let (closure, direct, catalog) = fixture();
        let d = decide(
            &Policy::Threshold { tp: 1.0 + 1e-9 },
            &closure,
            &direct,
            DocId(0),
            &catalog,
            NO_LIMIT,
            |_| false,
        );
        assert!(d.push.is_empty());
    }

    #[test]
    fn max_size_caps_pushes() {
        let (closure, direct, catalog) = fixture();
        let d = decide(
            &Policy::Threshold { tp: 0.5 },
            &closure,
            &direct,
            DocId(0),
            &catalog,
            Bytes::from_kib(15), // doc 3 (1 MB) no longer fits
            |_| false,
        );
        let ids: Vec<u32> = d.push.iter().map(|&(j, _)| j.raw()).collect();
        assert!(ids.contains(&1) && ids.contains(&2));
        assert!(!ids.contains(&3), "oversized doc must not be pushed");
    }

    #[test]
    fn exclude_filters_cached_docs() {
        let (closure, direct, catalog) = fixture();
        let d = decide(
            &Policy::Threshold { tp: 0.5 },
            &closure,
            &direct,
            DocId(0),
            &catalog,
            NO_LIMIT,
            |j| j == DocId(1),
        );
        let ids: Vec<u32> = d.push.iter().map(|&(j, _)| j.raw()).collect();
        assert!(!ids.contains(&1), "cooperatively excluded");
        assert!(ids.contains(&2));
    }

    #[test]
    fn top_k_limits_count() {
        let (closure, direct, catalog) = fixture();
        let d = decide(
            &Policy::TopK { k: 2, floor: 0.1 },
            &closure,
            &direct,
            DocId(0),
            &catalog,
            NO_LIMIT,
            |_| false,
        );
        assert_eq!(d.push.len(), 2);
        assert_eq!(d.push[0].0, DocId(1), "best candidate first");
    }

    #[test]
    fn embedding_only_pushes_certain_deps() {
        let (closure, direct, catalog) = fixture();
        let d = decide(
            &Policy::EmbeddingOnly,
            &closure,
            &direct,
            DocId(0),
            &catalog,
            NO_LIMIT,
            |_| false,
        );
        let ids: Vec<u32> = d.push.iter().map(|&(j, _)| j.raw()).collect();
        assert_eq!(ids, vec![1], "only the p=1.0 dependency");
    }

    #[test]
    fn hybrid_splits_push_and_hints() {
        let (closure, direct, catalog) = fixture();
        let d = decide(
            &Policy::Hybrid {
                push_tp: 0.95,
                hint_tp: 0.3,
            },
            &closure,
            &direct,
            DocId(0),
            &catalog,
            NO_LIMIT,
            |_| false,
        );
        let pushed: Vec<u32> = d.push.iter().map(|&(j, _)| j.raw()).collect();
        let hinted: Vec<u32> = d.hints.iter().map(|&(j, _)| j.raw()).collect();
        assert_eq!(pushed, vec![1]);
        assert!(hinted.contains(&2) && hinted.contains(&3));
        assert!(!hinted.contains(&4), "p=0.2 below hint threshold");
    }

    #[test]
    fn push_bytes_sums_sizes() {
        let (closure, direct, catalog) = fixture();
        let d = decide(
            &Policy::Threshold { tp: 0.5 },
            &closure,
            &direct,
            DocId(0),
            &catalog,
            NO_LIMIT,
            |_| false,
        );
        assert_eq!(
            d.push_bytes(&catalog),
            Bytes::new(1_000 + 1_000 + 1_000_000)
        );
    }

    #[test]
    fn validation() {
        assert!(Policy::Threshold { tp: 0.5 }.validate().is_ok());
        assert!(Policy::Threshold { tp: 0.0 }.validate().is_err());
        assert!(Policy::Threshold { tp: 1.5 }.validate().is_err());
        assert!(Policy::TopK { k: 3, floor: 0.2 }.validate().is_ok());
        assert!(Policy::TopK { k: 3, floor: -0.2 }.validate().is_err());
        assert!(Policy::EmbeddingOnly.validate().is_ok());
        assert!(Policy::Hybrid {
            push_tp: 0.9,
            hint_tp: 0.3
        }
        .validate()
        .is_ok());
        assert!(Policy::Hybrid {
            push_tp: 0.3,
            hint_tp: 0.9
        }
        .validate()
        .is_err());
    }

    #[test]
    fn unknown_doc_pushes_nothing() {
        let (closure, direct, catalog) = fixture();
        let d = decide(
            &Policy::Threshold { tp: 0.1 },
            &closure,
            &direct,
            DocId(4),
            &catalog,
            NO_LIMIT,
            |_| false,
        );
        assert!(d.push.is_empty());
    }
}
