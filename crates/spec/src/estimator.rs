//! Rolling re-estimation of `P`/`P*` (§3.2, §3.4).
//!
//! The paper assumes *"a constant number of days (HistoryLength) is used
//! to estimate the P and P* relations … this estimation is performed
//! periodically, every UpdateCycle days"* (baseline: 60-day history,
//! 1-day cycle). §3.4 then measures how stale relations degrade
//! performance (7% absolute loss with a 60-day cycle, 3% with 7 days)
//! and how shortening the history to 30 days helps (≈5%).
//!
//! [`RollingEstimator`] implements exactly that schedule over a trace,
//! plus the exponential *aging* refinement the paper envisions ("an
//! aging mechanism to phase-out dependencies exhibited in older
//! traces"): instead of a hard history window, each day's counts can be
//! decayed by a factor before the next day is added.

use serde::{Deserialize, Serialize};
use specweb_core::time::Duration;
use specweb_core::{CoreError, Result};
use specweb_trace::generator::Trace;

use crate::deps::{DepMatrix, DepMatrixBuilder};

/// Schedule and estimation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Days of history used per estimation (paper baseline: 60).
    pub history_days: u64,
    /// Days between re-estimations (paper baseline: 1).
    pub update_cycle_days: u64,
    /// The dependency window `T_w` (paper baseline: 5 s).
    pub window: Duration,
    /// Minimum antecedent occurrences for a pair to be kept.
    pub min_support: u64,
    /// Closure floor (entries below can never pass a policy threshold).
    pub closure_floor: f64,
    /// Maximum closure entries per row.
    pub closure_max_row: usize,
    /// Optional exponential aging: each day's pair counts are weighted
    /// by `decay^(age_days)` instead of the hard history cutoff.
    /// `None` = the paper's hard window.
    pub aging_decay: Option<f64>,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            history_days: 60,
            update_cycle_days: 1,
            window: Duration::from_secs(5),
            min_support: 2,
            closure_floor: 0.01,
            closure_max_row: 128,
            aging_decay: None,
        }
    }
}

impl EstimatorConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.history_days == 0 {
            return Err(CoreError::invalid_config(
                "estimator.history_days",
                "must be positive",
            ));
        }
        if self.update_cycle_days == 0 {
            return Err(CoreError::invalid_config(
                "estimator.update_cycle_days",
                "must be positive",
            ));
        }
        if !(0.0 < self.closure_floor && self.closure_floor <= 1.0) {
            return Err(CoreError::invalid_config(
                "estimator.closure_floor",
                "must be in (0, 1]",
            ));
        }
        if let Some(d) = self.aging_decay {
            if !(0.0 < d && d <= 1.0) {
                return Err(CoreError::invalid_config(
                    "estimator.aging_decay",
                    "must be in (0, 1]",
                ));
            }
        }
        Ok(())
    }
}

/// The matrices in force at some point of the replay.
#[derive(Debug, Clone)]
pub struct MatrixPair {
    /// The direct matrix `P`.
    pub direct: DepMatrix,
    /// The closure `P*`.
    pub closure: DepMatrix,
    /// The day the estimate was produced.
    pub estimated_on_day: u64,
}

/// Rolling estimator over a trace.
///
/// Call [`RollingEstimator::matrices_for_day`] as the replay crosses day
/// boundaries; re-estimation happens lazily on update-cycle boundaries
/// and is cached in between.
#[derive(Debug)]
pub struct RollingEstimator<'a> {
    cfg: EstimatorConfig,
    trace: &'a Trace,
    current: Option<MatrixPair>,
}

impl<'a> RollingEstimator<'a> {
    /// Creates the estimator.
    pub fn new(cfg: EstimatorConfig, trace: &'a Trace) -> Result<Self> {
        cfg.validate()?;
        Ok(RollingEstimator {
            cfg,
            trace,
            current: None,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.cfg
    }

    /// Returns the matrices a server would be using on day `day`
    /// (estimated from trace days strictly before the most recent
    /// update-cycle boundary at or before `day`).
    pub fn matrices_for_day(&mut self, day: u64) -> Result<&MatrixPair> {
        let boundary = day - day % self.cfg.update_cycle_days;
        let pair = match self.current.take() {
            Some(m) if m.estimated_on_day == boundary => m,
            _ => self.estimate_at(boundary)?,
        };
        Ok(self.current.insert(pair))
    }

    /// Produces the estimate as of the morning of `day` (using history
    /// days `[day − history, day)`).
    pub fn estimate_at(&self, day: u64) -> Result<MatrixPair> {
        self.estimate_at_jobs(day, specweb_core::par::default_jobs())
    }

    /// [`RollingEstimator::estimate_at`] with an explicit worker count
    /// for the closure step. [`MatrixStore::precompute`] parallelizes
    /// across boundaries and therefore runs each closure serially; the
    /// result is identical either way.
    pub fn estimate_at_jobs(&self, day: u64, jobs: usize) -> Result<MatrixPair> {
        let start = day.saturating_sub(self.cfg.history_days);
        let direct = match self.cfg.aging_decay {
            None => {
                let mut b = DepMatrixBuilder::new(self.cfg.window);
                for d in start..day {
                    b.push_all(self.trace.day_slice(d));
                }
                b.build(self.cfg.min_support)
            }
            Some(decay) => self.estimate_aged(day, decay),
        };
        let closure =
            direct.closure_jobs(self.cfg.closure_floor, self.cfg.closure_max_row, jobs)?;
        Ok(MatrixPair {
            direct,
            closure,
            estimated_on_day: day,
        })
    }

    /// Aged estimation: every past day contributes, weighted by
    /// `decay^age`. Implemented by blending per-day matrices — counts
    /// would be more precise, but matrices compose adequately for the
    /// drift experiment and keep memory flat.
    fn estimate_aged(&self, day: u64, decay: f64) -> DepMatrix {
        use specweb_core::ids::DocId;
        use std::collections::BTreeMap;
        // Weighted average of per-day direct matrices. Weight by decay^age
        // and by each day's antecedent occurrence share — approximated
        // here by equal day weights, which suffices for drift tracking.
        // BTreeMaps keep the blend and the assembled rows id-ordered, so
        // the composed matrix is deterministic by construction.
        let mut acc: BTreeMap<(DocId, DocId), f64> = BTreeMap::new();
        let mut wsum = 0.0f64;
        let horizon = (self.cfg.history_days * 3).min(day); // old days ≈ 0 weight
        for d in day.saturating_sub(horizon)..day {
            let age = day - 1 - d;
            let w = decay.powi(age as i32);
            if w < 1e-4 {
                continue;
            }
            let slice = self.trace.day_slice(d);
            if slice.is_empty() {
                continue;
            }
            let m = DepMatrixBuilder::estimate(slice, self.cfg.window, 1);
            for (i, j, p) in m.entries() {
                *acc.entry((i, j)).or_insert(0.0) += w * p;
            }
            wsum += w;
        }
        let mut rows: BTreeMap<DocId, Vec<(DocId, f64)>> = BTreeMap::new();
        if wsum > 0.0 {
            for ((i, j), v) in acc {
                let p = (v / wsum).min(1.0);
                if p > 0.0 {
                    rows.entry(i).or_default().push((j, p));
                }
            }
        }
        let mut out = DepMatrixBuilder::new(self.cfg.window).build(1);
        // DepMatrix has no public constructor from rows; rebuild through
        // its (crate-public) internals instead.
        out.replace_rows(rows);
        out
    }
}

/// A precomputed set of matrix estimates for every update-cycle
/// boundary of a trace — lets parameter sweeps share the (expensive)
/// estimation across many simulator runs with the same estimator
/// configuration.
#[derive(Debug)]
pub struct MatrixStore {
    cfg: EstimatorConfig,
    by_boundary: Vec<MatrixPair>,
}

impl MatrixStore {
    /// Precomputes estimates for all update boundaries in
    /// `[0, total_days]`.
    pub fn precompute(
        cfg: &EstimatorConfig,
        trace: &Trace,
        total_days: u64,
    ) -> Result<MatrixStore> {
        cfg.validate()?;
        let est = RollingEstimator::new(*cfg, trace)?;
        // Boundaries are independent estimates over fixed slices of the
        // trace, so they fan out on the process-default pool; assembling
        // them in day order keeps the store byte-identical to a serial
        // build. The inner closure runs serially here — one parallel
        // level is enough, and it avoids quadratic thread fan-out.
        let days: Vec<u64> = (0..=total_days)
            .step_by(usize::try_from(cfg.update_cycle_days.max(1)).expect("cycle fits usize"))
            .collect();
        let by_boundary = specweb_core::par::Pool::auto()
            .try_map_indexed(&days, |_, &day| est.estimate_at_jobs(day, 1))?;
        Ok(MatrixStore {
            cfg: *cfg,
            by_boundary,
        })
    }

    /// The estimator configuration this store was built with. Simulators
    /// use it to reject a store/config mismatch, which would silently
    /// speculate on the wrong matrices.
    pub fn config(&self) -> &EstimatorConfig {
        &self.cfg
    }

    /// The matrices in force on `day`.
    pub fn for_day(&self, day: u64) -> &MatrixPair {
        let idx = ((day / self.cfg.update_cycle_days) as usize).min(self.by_boundary.len() - 1);
        &self.by_boundary[idx]
    }

    /// Number of precomputed boundaries.
    pub fn len(&self) -> usize {
        self.by_boundary.len()
    }

    /// Total closure rows truncated by the safety valve across all
    /// precomputed boundaries — the "no silent caps" signal sweeps
    /// should surface next to their results.
    pub fn truncated_rows(&self) -> u64 {
        self.by_boundary
            .iter()
            .map(|m| m.closure.truncated_rows())
            .sum()
    }

    /// Whether the store is empty (never true after `precompute`).
    pub fn is_empty(&self) -> bool {
        self.by_boundary.is_empty()
    }

    /// Publishes the safety-valve truncation count into an obs bundle
    /// as the `spec.closure_truncated_rows` counter, so every estimator
    /// ablation surfaces silent capping through its run manifest. Emits
    /// a warning-level event when any row was truncated.
    pub fn record_truncation(&self, obs: &specweb_core::obs::Obs) {
        let truncated = self.truncated_rows();
        obs.metrics
            .counter("spec.closure_truncated_rows")
            .add(truncated);
        if truncated > 0 {
            obs.events.event(
                specweb_core::SimTime::ZERO,
                "spec",
                "closure.truncated",
                format!(
                    "rows={truncated} max_row={} (closure probabilities are lower bounds)",
                    self.cfg.closure_max_row
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specweb_netsim::topology::Topology;
    use specweb_trace::generator::{TraceConfig, TraceGenerator};

    fn trace(seed: u64, churn: f64) -> Trace {
        let topo = Topology::balanced(2, 3, 4);
        let mut cfg = TraceConfig::small(seed);
        cfg.duration_days = 12;
        cfg.sessions_per_day = 60;
        cfg.link_churn_per_day = churn;
        TraceGenerator::new(cfg).unwrap().generate(&topo).unwrap()
    }

    #[test]
    fn estimates_are_cached_within_cycle() {
        let t = trace(100, 0.0);
        let cfg = EstimatorConfig {
            history_days: 5,
            update_cycle_days: 3,
            ..EstimatorConfig::default()
        };
        let mut est = RollingEstimator::new(cfg, &t).unwrap();
        let d6 = est.matrices_for_day(6).unwrap().estimated_on_day;
        assert_eq!(d6, 6);
        let d7 = est.matrices_for_day(7).unwrap().estimated_on_day;
        assert_eq!(d7, 6, "day 7 uses the day-6 estimate");
        let d9 = est.matrices_for_day(9).unwrap().estimated_on_day;
        assert_eq!(d9, 9);
    }

    #[test]
    fn estimation_uses_only_past_days() {
        let t = trace(101, 0.0);
        let cfg = EstimatorConfig {
            history_days: 60,
            update_cycle_days: 1,
            ..EstimatorConfig::default()
        };
        let est = RollingEstimator::new(cfg, &t).unwrap();
        // Day 0 has no history: the matrix must be empty.
        let m = est.estimate_at(0).unwrap();
        assert_eq!(m.direct.n_entries(), 0);
        // Day 5 has 5 days of history: non-empty.
        let m = est.estimate_at(5).unwrap();
        assert!(m.direct.n_entries() > 0);
    }

    #[test]
    fn closure_is_consistent_with_direct() {
        let t = trace(102, 0.0);
        let est = RollingEstimator::new(EstimatorConfig::default(), &t).unwrap();
        let m = est.estimate_at(10).unwrap();
        for (i, j, p) in m.direct.entries() {
            if p >= m.closure.row(i).first().map(|_| 0.01).unwrap_or(1.0) {
                assert!(
                    m.closure.get(i, j) >= p - 1e-9 || p < 0.01,
                    "closure lost ({i},{j},{p})"
                );
            }
        }
    }

    #[test]
    fn drift_makes_old_estimates_stale() {
        // With heavy churn, a matrix estimated from days [0,6) should
        // overlap *less* with one from days [6,12) than the no-churn
        // case overlaps with itself.
        let t = trace(103, 0.4);
        let cfg = EstimatorConfig {
            history_days: 6,
            update_cycle_days: 1,
            min_support: 1,
            ..EstimatorConfig::default()
        };
        let est = RollingEstimator::new(cfg, &t).unwrap();
        let early = est.estimate_at(6).unwrap().direct;
        let late_builder =
            DepMatrixBuilder::estimate(&t.accesses[t.day_slice(0).len()..], cfg.window, 1);
        // Jaccard overlap of the *traversal* edge sets (p < 0.95 —
        // embedding edges never churn, so including them would mask the
        // drift the experiment is about).
        let edges = |m: &DepMatrix| {
            m.entries()
                .filter(|&(_, _, p)| p < 0.95)
                .map(|(i, j, _)| (i, j))
                .collect::<std::collections::HashSet<_>>()
        };
        let a = edges(&early);
        let b = edges(&late_builder);
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count().max(1) as f64;
        let overlap = inter / union;
        assert!(
            overlap < 0.8,
            "churned trace: early/late overlap {overlap} suspiciously high"
        );
    }

    #[test]
    fn aged_estimation_tracks_recent_days_more() {
        let t = trace(104, 0.5);
        let aged_cfg = EstimatorConfig {
            history_days: 6,
            aging_decay: Some(0.5),
            min_support: 1,
            ..EstimatorConfig::default()
        };
        let est = RollingEstimator::new(aged_cfg, &t).unwrap();
        let m = est.estimate_at(10).unwrap();
        assert!(m.direct.n_entries() > 0);
        for (_, _, p) in m.direct.entries() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn matrix_store_matches_rolling_estimator() {
        let t = trace(106, 0.0);
        let cfg = EstimatorConfig {
            history_days: 5,
            update_cycle_days: 2,
            ..EstimatorConfig::default()
        };
        let store = MatrixStore::precompute(&cfg, &t, 11).unwrap();
        assert_eq!(store.len(), 6); // days 0,2,4,6,8,10
        let mut rolling = RollingEstimator::new(cfg, &t).unwrap();
        for day in [0u64, 3, 7, 10] {
            let a = store.for_day(day);
            let b = rolling.matrices_for_day(day).unwrap();
            assert_eq!(a.estimated_on_day, b.estimated_on_day);
            assert_eq!(a.direct.n_entries(), b.direct.n_entries());
        }
        // Days past the horizon clamp to the last boundary.
        assert_eq!(store.for_day(99).estimated_on_day, 10);
    }

    #[test]
    fn rejects_bad_config() {
        let t = trace(105, 0.0);
        let bad = [
            EstimatorConfig {
                history_days: 0,
                ..Default::default()
            },
            EstimatorConfig {
                update_cycle_days: 0,
                ..Default::default()
            },
            EstimatorConfig {
                closure_floor: 0.0,
                ..Default::default()
            },
            EstimatorConfig {
                aging_decay: Some(1.5),
                ..Default::default()
            },
        ];
        for cfg in bad {
            assert!(RollingEstimator::new(cfg, &t).is_err(), "{cfg:?}");
        }
    }
}
