//! Cooperative clients (§3.4).
//!
//! *"When a client requests a particular document from a server, it
//! piggy-backs its request with a list of document IDs that it already
//! has in its cache from this server."* The server then never pushes a
//! document the client already holds — pure bandwidth savings.
//!
//! Two digest encodings are provided:
//!
//! * [`ExactDigest`] — the literal list of ids (what the paper
//!   describes; its overhead is a few bytes per cached document);
//! * [`BloomDigest`] — a Bloom filter, the constant-size engineering
//!   refinement (false positives make the server occasionally *skip* a
//!   useful push — safe, never wasteful).

use serde::{Deserialize, Serialize};
use specweb_core::ids::DocId;
use specweb_core::rng::splitmix64;
use specweb_core::units::Bytes;

/// A piggybacked cache digest.
pub trait Digest {
    /// Whether the digest claims the client holds `doc`.
    fn maybe_contains(&self, doc: DocId) -> bool;
    /// The wire size of the digest.
    fn wire_size(&self) -> Bytes;
}

/// The paper's exact id list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExactDigest {
    ids: Vec<DocId>,
}

impl ExactDigest {
    /// Builds from an iterator of cached doc ids.
    pub fn from_docs(docs: impl Iterator<Item = DocId>) -> Self {
        let mut ids: Vec<DocId> = docs.collect();
        ids.sort_unstable();
        ids.dedup();
        ExactDigest { ids }
    }

    /// Number of ids carried.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the digest is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

impl Digest for ExactDigest {
    fn maybe_contains(&self, doc: DocId) -> bool {
        self.ids.binary_search(&doc).is_ok()
    }

    fn wire_size(&self) -> Bytes {
        // 4 bytes per u32 id.
        Bytes::new(self.ids.len() as u64 * 4)
    }
}

/// A fixed-size Bloom filter digest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BloomDigest {
    bits: Vec<u64>,
    n_hashes: u32,
}

impl BloomDigest {
    /// Creates a filter sized for `expected` entries at roughly the
    /// given false-positive rate.
    pub fn new(expected: usize, fp_rate: f64) -> Self {
        let fp = fp_rate.clamp(1e-6, 0.5);
        let n = expected.max(1) as f64;
        // Standard sizing: m = -n·ln(fp)/ln(2)², k = (m/n)·ln(2).
        let m_bits = (-n * fp.ln() / (2f64.ln() * 2f64.ln())).ceil() as usize;
        let m_words = m_bits.div_ceil(64).max(1);
        let k = ((m_words * 64) as f64 / n * 2f64.ln()).round().max(1.0) as u32;
        BloomDigest {
            bits: vec![0; m_words],
            n_hashes: k.min(16),
        }
    }

    /// Inserts a document id.
    pub fn insert(&mut self, doc: DocId) {
        let m = self.bits.len() as u64 * 64;
        for k in 0..self.n_hashes {
            let h = splitmix64(u64::from(doc.raw()) ^ (u64::from(k) << 32)) % m;
            self.bits[(h / 64) as usize] |= 1 << (h % 64);
        }
    }

    /// Builds from an iterator of cached doc ids.
    pub fn from_docs(docs: impl Iterator<Item = DocId>, expected: usize, fp_rate: f64) -> Self {
        let mut b = BloomDigest::new(expected, fp_rate);
        for d in docs {
            b.insert(d);
        }
        b
    }
}

impl Digest for BloomDigest {
    fn maybe_contains(&self, doc: DocId) -> bool {
        let m = self.bits.len() as u64 * 64;
        (0..self.n_hashes).all(|k| {
            let h = splitmix64(u64::from(doc.raw()) ^ (u64::from(k) << 32)) % m;
            self.bits[(h / 64) as usize] & (1 << (h % 64)) != 0
        })
    }

    fn wire_size(&self) -> Bytes {
        Bytes::new(self.bits.len() as u64 * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_digest_roundtrip() {
        let d = ExactDigest::from_docs([3, 1, 2, 2].into_iter().map(DocId::new));
        assert_eq!(d.len(), 3);
        assert!(d.maybe_contains(DocId(1)));
        assert!(d.maybe_contains(DocId(3)));
        assert!(!d.maybe_contains(DocId(4)));
        assert_eq!(d.wire_size(), Bytes::new(12));
    }

    #[test]
    fn exact_digest_empty() {
        let d = ExactDigest::from_docs(std::iter::empty());
        assert!(d.is_empty());
        assert!(!d.maybe_contains(DocId(0)));
        assert_eq!(d.wire_size(), Bytes::ZERO);
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let docs: Vec<DocId> = (0..500).map(DocId::new).collect();
        let b = BloomDigest::from_docs(docs.iter().copied(), 500, 0.01);
        for d in &docs {
            assert!(b.maybe_contains(*d), "false negative at {d}");
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_reasonable() {
        let b = BloomDigest::from_docs((0..1_000).map(DocId::new), 1_000, 0.01);
        let fps = (1_000u32..21_000)
            .filter(|&x| b.maybe_contains(DocId(x)))
            .count();
        let rate = fps as f64 / 20_000.0;
        assert!(rate < 0.05, "false-positive rate {rate}");
    }

    #[test]
    fn bloom_is_much_smaller_than_exact_for_big_caches() {
        let n = 10_000;
        let exact = ExactDigest::from_docs((0..n).map(DocId::new));
        let bloom = BloomDigest::from_docs((0..n).map(DocId::new), n as usize, 0.01);
        assert!(bloom.wire_size() < exact.wire_size() / 2);
    }

    #[test]
    fn bloom_empty_contains_nothing() {
        let b = BloomDigest::new(100, 0.01);
        let hits = (0..1_000).filter(|&x| b.maybe_contains(DocId(x))).count();
        assert_eq!(hits, 0);
    }
}
