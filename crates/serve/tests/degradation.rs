//! End-to-end graceful-degradation tests for the hardened server.
//!
//! The scenario the crate exists for: under rising load the server
//! sheds **speculation first** (demand-only service, the §2.3 move),
//! refuses connections only at the hard cap — and a refused client's
//! retry succeeds once load drains. Hostile input gets a typed error
//! without taking the server down, and a graceful shutdown completes
//! in-flight sessions within the configured deadlines.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use specweb_core::{Bytes, CoreError, DocId, Duration as SimDuration};
use specweb_netsim::topology::Topology;
use specweb_serve::client::{ClientConfig, RetryConfig, SpecClient};
use specweb_serve::overload::{OverloadPolicy, ServiceLevel};
use specweb_serve::server::{ServerConfig, ServerHandle, ServerKnowledge, SpecServer};
use specweb_spec::deps::DepMatrixBuilder;
use specweb_spec::policy::{decide, Policy};
use specweb_trace::generator::{TraceConfig, TraceGenerator};

/// Server knowledge estimated from a small synthetic trace — the §3.2
/// off-line estimation step, as in the `push_server` example.
fn knowledge() -> ServerKnowledge {
    let topo = Topology::two_level(4, 6);
    let mut tc = TraceConfig::small(77);
    tc.duration_days = 8;
    tc.sessions_per_day = 60;
    let trace = TraceGenerator::new(tc).unwrap().generate(&topo).unwrap();
    let direct = DepMatrixBuilder::estimate(&trace.accesses, SimDuration::from_secs(5), 2);
    let closure = direct.closure(0.05, 64).unwrap();
    ServerKnowledge {
        catalog: trace.catalog.clone(),
        direct,
        closure,
        policy: Policy::Threshold { tp: 0.25 },
        max_size: Bytes::INFINITE,
    }
}

/// A document whose response carries at least one speculative push.
fn pushing_doc(k: &ServerKnowledge) -> DocId {
    (0..k.catalog.len() as u32)
        .map(DocId::new)
        .find(|&d| {
            decide(
                &k.policy,
                &k.closure,
                &k.direct,
                d,
                &k.catalog,
                k.max_size,
                |_| false,
            )
            .push
            .iter()
            .any(|&(j, _)| j != d)
        })
        .expect("the estimated matrices must make at least one doc push")
}

fn spawn(overload: OverloadPolicy, read_timeout: Duration) -> ServerHandle {
    SpecServer::spawn(
        knowledge(),
        ServerConfig {
            overload,
            read_timeout,
            write_timeout: Duration::from_secs(5),
            admit_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn client(handle: &ServerHandle, max_attempts: u32) -> SpecClient {
    SpecClient::new(
        handle.addr(),
        ClientConfig {
            retry: RetryConfig {
                max_attempts,
                base: Duration::from_millis(50),
                cap: Duration::from_millis(400),
                jitter_seed: 1,
            },
            ..ClientConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn full_service_pushes_and_the_pushes_become_cache_hits() {
    let handle = spawn(OverloadPolicy::default(), Duration::from_secs(5));
    let k = knowledge();
    let doc = pushing_doc(&k);

    let mut c = client(&handle, 2);
    let r = c.fetch(doc).unwrap();
    assert!(!r.from_cache);
    assert!(!r.pushed.is_empty(), "full service must speculate");

    // A pushed document is served locally — no wire request.
    let again = c.fetch(r.pushed[0]).unwrap();
    assert!(again.from_cache);
    c.quit().unwrap();

    let stats = handle.stats();
    handle.shutdown().unwrap();
    assert!(stats.pushes >= 1);
    assert_eq!(stats.shed_speculation, 0);
    assert_eq!(stats.requests, 1, "the cache hit never reached the server");
}

#[test]
fn overload_sheds_speculation_before_refusing_connections() {
    // One active connection is already past demand_only_at = 1: the
    // server keeps serving demand but stops speculating.
    let handle = spawn(
        OverloadPolicy {
            max_connections: 4,
            demand_only_at: 1,
        },
        Duration::from_secs(5),
    );
    let k = knowledge();
    let doc = pushing_doc(&k);

    let mut c = client(&handle, 2);
    let r = c.fetch(doc).unwrap();
    assert!(!r.from_cache, "demand service must still work");
    assert!(r.pushed.is_empty(), "speculation must be shed under load");
    assert_eq!(handle.service_level(), ServiceLevel::DemandOnly);
    c.quit().unwrap();

    let stats = handle.stats();
    handle.shutdown().unwrap();
    assert!(stats.shed_speculation >= 1);
    assert_eq!(
        stats.refused_connections, 0,
        "shedding speculation must not refuse anyone"
    );
}

#[test]
fn busy_refusal_is_transient_and_the_retry_succeeds() {
    let handle = spawn(
        OverloadPolicy {
            max_connections: 2,
            demand_only_at: 1,
        },
        Duration::from_secs(10),
    );

    // Saturate the server with two idle connections.
    let hold_a = TcpStream::connect(handle.addr()).unwrap();
    let hold_b = TcpStream::connect(handle.addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().connections < 2 {
        assert!(Instant::now() < deadline, "holds were never admitted");
        thread::sleep(Duration::from_millis(5));
    }

    // Free one slot shortly after the client starts retrying.
    let freer = thread::spawn(move || {
        thread::sleep(Duration::from_millis(200));
        drop(hold_a);
    });

    let mut c = client(&handle, 8);
    let r = c.fetch(DocId::new(0)).unwrap();
    assert!(!r.from_cache, "the retried fetch must reach the server");
    freer.join().unwrap();
    c.quit().unwrap();
    drop(hold_b);

    let stats = handle.stats();
    handle.shutdown().unwrap();
    assert!(
        stats.refused_connections >= 1,
        "the saturated server must have refused at least once"
    );

    // The retry path must account its cost in the wall-clock registry:
    // at least one retry and a nonzero backoff pause.
    let wall = specweb_core::obs::global().snapshot().wallclock;
    let count = |name: &str| match wall.get(name) {
        Some(specweb_core::obs::MetricValue::Counter { value }) => *value,
        _ => 0,
    };
    assert!(count("serve.client_retries") >= 1, "retries not counted");
    assert!(
        count("serve.client_backoff_ms") >= 1,
        "backoff time not accounted"
    );
}

#[test]
fn hostile_input_gets_a_typed_error_and_the_server_survives() {
    let handle = spawn(OverloadPolicy::default(), Duration::from_secs(5));

    // An attacker sends an over-long line (the default cap is 4096).
    let mut attacker = TcpStream::connect(handle.addr()).unwrap();
    attacker.write_all(&vec![b'a'; 8192]).unwrap();
    attacker.write_all(b"\n").unwrap();
    let mut line = String::new();
    BufReader::new(attacker.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(line.starts_with("ERR"), "got {line:?}");
    assert!(line.contains("exceeds 4096 bytes"));
    drop(attacker);

    // Another sends an oversized HAVE digest on a well-formed line.
    let mut attacker = TcpStream::connect(handle.addr()).unwrap();
    let digest = vec!["1"; 300].join(",");
    writeln!(attacker, "GET 0 HAVE {digest}").unwrap();
    let mut line = String::new();
    BufReader::new(attacker.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(line.starts_with("ERR"), "got {line:?}");
    assert!(line.contains("exceeds 256 ids"));
    drop(attacker);

    // The server is unharmed: a well-behaved client is served normally.
    let mut c = client(&handle, 2);
    assert!(c.fetch(DocId::new(0)).is_ok());
    c.quit().unwrap();

    let stats = handle.stats();
    handle.shutdown().unwrap();
    assert!(stats.protocol_errors >= 2);
}

#[test]
fn graceful_shutdown_drains_within_the_read_deadline() {
    let read_timeout = Duration::from_millis(300);
    let handle = spawn(OverloadPolicy::default(), read_timeout);
    let addr = handle.addr();

    // An in-flight session: served once, then left open and idle.
    let mut c = client(&handle, 0);
    c.fetch(DocId::new(0)).unwrap();

    let start = Instant::now();
    handle.shutdown().unwrap();
    let elapsed = start.elapsed();
    assert!(
        elapsed < read_timeout + Duration::from_secs(2),
        "shutdown took {elapsed:?}, expected under {read_timeout:?} + slack"
    );

    // The drained server is really gone: a fresh fetch fails with a
    // transient (typed) error once retries run out.
    let mut late = SpecClient::new(
        addr,
        ClientConfig {
            retry: RetryConfig {
                max_attempts: 1,
                base: Duration::from_millis(10),
                cap: Duration::from_millis(20),
                jitter_seed: 2,
            },
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let e = late.fetch(DocId::new(1)).unwrap_err();
    assert!(matches!(e, CoreError::Io(_)), "got {e:?}");
}
