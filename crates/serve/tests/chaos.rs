//! Slow-client chaos: the event loop vs the blocking baseline.
//!
//! Both servers face the same kind of seeded degraded load — clients
//! that stall outright, dribble one byte per write, or stretch the gap
//! between chunks — driven by [`specweb_serve::chaos`]. The blocking
//! baseline pins one OS thread per such peer, so its concurrency is its
//! thread budget; the reactor holds the same peer for a few kilobytes.
//! The acceptance bar from the issue: the event loop must sustain at
//! least **10×** the baseline's connection count with full correctness
//! (every response well-formed, nothing refused, nothing timed out).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use specweb_core::time::Duration as SimDuration;
use specweb_serve::session::KnowledgeSpec;
use specweb_serve::{
    run_chaos, BlockingServer, ChaosConfig, ClientConfig, OverloadPolicy, ServerConfig, SpecClient,
    SpecServer, StatEntry,
};

/// The baseline's whole connection budget.
const BASELINE_CLIENTS: usize = 24;
/// What we demand of the event loop: 10× the baseline.
const EVENT_LOOP_CLIENTS: usize = 240;

fn chaos_config(clients: usize) -> ChaosConfig {
    ChaosConfig {
        clients,
        requests_per_client: 2,
        n_docs: 8,
        seed: 7,
        horizon: SimDuration::from_millis(2_000),
        deadline: Duration::from_secs(30),
        chunk_delay: Duration::from_millis(1),
    }
}

fn server_config(max_connections: usize) -> ServerConfig {
    ServerConfig {
        overload: OverloadPolicy {
            max_connections,
            // Shedding speculation under load is allowed (it is the
            // ladder working); refusing or corrupting is not.
            demand_only_at: max_connections * 3 / 4,
        },
        ..ServerConfig::default()
    }
}

#[test]
fn blocking_baseline_survives_chaos_at_its_thread_budget() {
    let knowledge = KnowledgeSpec::demo(42).build(1).expect("knowledge builds");
    let server =
        BlockingServer::spawn(knowledge, server_config(BASELINE_CLIENTS)).expect("baseline spawns");
    let report = run_chaos(server.addr(), &chaos_config(BASELINE_CLIENTS)).expect("chaos runs");
    assert!(
        report.clean(),
        "baseline failed at its own budget: {report:?}"
    );
    let stats = server.stats();
    server.shutdown().expect("baseline shuts down");
    assert_eq!(stats.connections, BASELINE_CLIENTS as u64);
    assert_eq!(stats.refused_connections, 0);
}

/// Probes `STATS` on its own connection every few milliseconds until
/// told to stop, returning the successful round-trips and the last
/// snapshot. Runs alongside the chaos load: live introspection must
/// stay answerable while the reactor is saturated with degraded peers.
fn spawn_stats_prober(
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
) -> thread::JoinHandle<(u64, Vec<StatEntry>)> {
    thread::spawn(move || {
        let mut client = SpecClient::new(addr, ClientConfig::default()).expect("prober client");
        let mut round_trips = 0u64;
        let mut last = Vec::new();
        while !stop.load(Ordering::Relaxed) {
            if let Ok(entries) = client.stats() {
                round_trips += 1;
                last = entries;
            }
            thread::sleep(Duration::from_millis(20));
        }
        (round_trips, last)
    })
}

#[test]
fn event_loop_sustains_ten_times_the_baseline_under_chaos() {
    const { assert!(EVENT_LOOP_CLIENTS >= 10 * BASELINE_CLIENTS) };
    let knowledge = KnowledgeSpec::demo(42).build(1).expect("knowledge builds");
    // Headroom above the client count so refusal would indicate a
    // resource leak (stuck connections), not a configured cap.
    let server = SpecServer::spawn(knowledge, server_config(EVENT_LOOP_CLIENTS + 16))
        .expect("event loop spawns");

    // Live introspection under load: a prober asks STATS throughout
    // the chaos run on a connection of its own.
    let stop = Arc::new(AtomicBool::new(false));
    let prober = spawn_stats_prober(server.addr(), Arc::clone(&stop));

    let report = run_chaos(server.addr(), &chaos_config(EVENT_LOOP_CLIENTS)).expect("chaos runs");
    stop.store(true, Ordering::Relaxed);
    let (stats_round_trips, last_snapshot) = prober.join().expect("prober joins");

    assert!(
        report.clean(),
        "event loop shed correctness at 10× the baseline: {report:?}"
    );
    let stats = server.stats();
    server.shutdown().expect("event loop shuts down");
    assert!(
        stats_round_trips >= 1,
        "STATS must stay answerable under slow-client load"
    );
    let value =
        |key: &str| -> Option<u64> { last_snapshot.iter().find(|e| e.key == key).map(|e| e.value) };
    assert!(
        value("live_connections").is_some() && value("requests").is_some(),
        "snapshot must carry gauges and counters: {last_snapshot:?}"
    );
    // ≥: a probe the client gave up on may still have been answered.
    assert!(stats.stats_requests >= stats_round_trips);
    // The chaos clients plus (at least) the prober's connection.
    assert!(stats.connections > EVENT_LOOP_CLIENTS as u64);
    assert_eq!(stats.refused_connections, 0);
    assert_eq!(
        stats.requests, report.requests_sent,
        "every pipelined request must be served"
    );
}
