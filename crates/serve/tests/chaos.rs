//! Slow-client chaos: the event loop vs the blocking baseline.
//!
//! Both servers face the same kind of seeded degraded load — clients
//! that stall outright, dribble one byte per write, or stretch the gap
//! between chunks — driven by [`specweb_serve::chaos`]. The blocking
//! baseline pins one OS thread per such peer, so its concurrency is its
//! thread budget; the reactor holds the same peer for a few kilobytes.
//! The acceptance bar from the issue: the event loop must sustain at
//! least **10×** the baseline's connection count with full correctness
//! (every response well-formed, nothing refused, nothing timed out).

use std::time::Duration;

use specweb_core::time::Duration as SimDuration;
use specweb_serve::session::KnowledgeSpec;
use specweb_serve::{
    run_chaos, BlockingServer, ChaosConfig, OverloadPolicy, ServerConfig, SpecServer,
};

/// The baseline's whole connection budget.
const BASELINE_CLIENTS: usize = 24;
/// What we demand of the event loop: 10× the baseline.
const EVENT_LOOP_CLIENTS: usize = 240;

fn chaos_config(clients: usize) -> ChaosConfig {
    ChaosConfig {
        clients,
        requests_per_client: 2,
        n_docs: 8,
        seed: 7,
        horizon: SimDuration::from_millis(2_000),
        deadline: Duration::from_secs(30),
        chunk_delay: Duration::from_millis(1),
    }
}

fn server_config(max_connections: usize) -> ServerConfig {
    ServerConfig {
        overload: OverloadPolicy {
            max_connections,
            // Shedding speculation under load is allowed (it is the
            // ladder working); refusing or corrupting is not.
            demand_only_at: max_connections * 3 / 4,
        },
        ..ServerConfig::default()
    }
}

#[test]
fn blocking_baseline_survives_chaos_at_its_thread_budget() {
    let knowledge = KnowledgeSpec::demo(42).build(1).expect("knowledge builds");
    let server =
        BlockingServer::spawn(knowledge, server_config(BASELINE_CLIENTS)).expect("baseline spawns");
    let report = run_chaos(server.addr(), &chaos_config(BASELINE_CLIENTS)).expect("chaos runs");
    assert!(
        report.clean(),
        "baseline failed at its own budget: {report:?}"
    );
    let stats = server.stats();
    server.shutdown().expect("baseline shuts down");
    assert_eq!(stats.connections, BASELINE_CLIENTS as u64);
    assert_eq!(stats.refused_connections, 0);
}

#[test]
fn event_loop_sustains_ten_times_the_baseline_under_chaos() {
    const { assert!(EVENT_LOOP_CLIENTS >= 10 * BASELINE_CLIENTS) };
    let knowledge = KnowledgeSpec::demo(42).build(1).expect("knowledge builds");
    // Headroom above the client count so refusal would indicate a
    // resource leak (stuck connections), not a configured cap.
    let server = SpecServer::spawn(knowledge, server_config(EVENT_LOOP_CLIENTS + 16))
        .expect("event loop spawns");
    let report = run_chaos(server.addr(), &chaos_config(EVENT_LOOP_CLIENTS)).expect("chaos runs");
    assert!(
        report.clean(),
        "event loop shed correctness at 10× the baseline: {report:?}"
    );
    let stats = server.stats();
    server.shutdown().expect("event loop shuts down");
    assert_eq!(stats.connections, EVENT_LOOP_CLIENTS as u64);
    assert_eq!(stats.refused_connections, 0);
    assert_eq!(
        stats.requests, report.requests_sent,
        "every pipelined request must be served"
    );
}
