//! A retrying protocol client with a speculative cache.
//!
//! The client half of the §4 prototype, hardened: connection and
//! request failures classified by [`CoreError::is_transient`] are
//! retried on a capped exponential backoff with seeded jitter, the
//! connection is re-established after transport errors, and `BUSY`
//! refusals (the server's overload shedding) are treated as transient —
//! the client backs off and tries again instead of failing the fetch.
//!
//! Pushed documents land in the client's cache; a later fetch of a
//! cached id never touches the wire, which is the protocol's point.

use std::collections::BTreeSet;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specweb_core::{CoreError, DocId, Result};

use crate::protocol::{read_bounded_line, ProtocolLimits, Request, ServerMsg, StatEntry};

/// Backoff schedule for transient failures.
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Retries after the initial attempt.
    pub max_attempts: u32,
    /// First backoff delay; doubles each retry.
    pub base: Duration,
    /// Ceiling on a single delay (before jitter).
    pub cap: Duration,
    /// Seed for the jitter RNG — fixed so tests are reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            jitter_seed: 0,
        }
    }
}

impl RetryConfig {
    /// Checks the schedule is usable.
    pub fn validate(&self) -> Result<()> {
        if self.base.is_zero() || self.cap < self.base {
            return Err(CoreError::invalid_config(
                "serve.retry",
                "base must be positive and cap ≥ base",
            ));
        }
        Ok(())
    }
}

/// Client tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Wire-format caps (also bounds the `HAVE` digest it sends).
    pub limits: ProtocolLimits,
    /// Transient-failure backoff.
    pub retry: RetryConfig,
    /// Read deadline per response line.
    pub read_timeout: Duration,
    /// Write deadline per request.
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            limits: ProtocolLimits::default(),
            retry: RetryConfig::default(),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// What one [`SpecClient::fetch`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchResult {
    /// The requested document.
    pub doc: DocId,
    /// Its size in bytes (0 when served from the local cache).
    pub size: u64,
    /// Documents the server pushed alongside it.
    pub pushed: Vec<DocId>,
    /// True when no wire request was needed.
    pub from_cache: bool,
}

struct Conn {
    reader: BufReader<TcpStream>,
    out: TcpStream,
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conn").finish_non_exhaustive()
    }
}

/// The retrying client.
#[derive(Debug)]
pub struct SpecClient {
    addr: SocketAddr,
    config: ClientConfig,
    rng: StdRng,
    conn: Option<Conn>,
    /// A BTreeSet: the piggybacked digest enumerates this set, so its
    /// content (capped at max_have_ids) must be run-stable, not
    /// hash-order dependent.
    cache: BTreeSet<DocId>,
}

impl SpecClient {
    /// Creates a client for a server address. The TCP connection is
    /// established lazily on the first fetch (and re-established, with
    /// backoff, whenever it breaks).
    pub fn new(addr: SocketAddr, config: ClientConfig) -> Result<SpecClient> {
        config.limits.validate()?;
        config.retry.validate()?;
        Ok(SpecClient {
            addr,
            rng: StdRng::seed_from_u64(config.retry.jitter_seed),
            config,
            conn: None,
            cache: BTreeSet::new(),
        })
    }

    /// Is a document already in the local cache?
    pub fn cached(&self, doc: DocId) -> bool {
        self.cache.contains(&doc)
    }

    /// Number of cached documents.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Fetches a document, retrying transient failures (I/O errors,
    /// `BUSY` overload refusals) on the backoff schedule. Protocol
    /// errors are not retried — resending the same poison cannot help.
    pub fn fetch(&mut self, doc: DocId) -> Result<FetchResult> {
        if self.cache.contains(&doc) {
            return Ok(FetchResult {
                doc,
                size: 0,
                pushed: Vec::new(),
                from_cache: true,
            });
        }
        let mut last: Option<CoreError> = None;
        for attempt in 0..=self.config.retry.max_attempts {
            if attempt > 0 {
                let pause = self.backoff(attempt - 1);
                // Backoff time is real service-time cost the retry
                // policy imposes on the user; account it next to the
                // retry count so sweeps can weigh delay against load.
                specweb_core::obs::global()
                    .metrics
                    .counter_on(
                        "serve.client_backoff_ms",
                        specweb_core::obs::Channel::WallClock,
                    )
                    .add(pause.as_millis() as u64);
                thread::sleep(pause);
            }
            match self.try_fetch(doc) {
                Ok(r) => return Ok(r),
                Err(e) if e.is_transient() => {
                    // The transport (or the server's patience) is gone;
                    // reconnect on the next attempt.
                    let obs = specweb_core::obs::global();
                    obs.metrics
                        .counter_on(
                            "serve.client_retries",
                            specweb_core::obs::Channel::WallClock,
                        )
                        .incr();
                    obs.events.wall_event(
                        "serve",
                        "retry",
                        format!("doc {} attempt {}: {e}", doc.raw(), attempt + 1),
                    );
                    self.conn = None;
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| CoreError::Io("retries exhausted".into())))
    }

    /// Asks the server for a live metrics snapshot (`STATS` →
    /// `STAT`… `END`), retrying transient failures on the same backoff
    /// schedule as [`SpecClient::fetch`]. The session stays open — a
    /// probe can interleave with fetches on one connection, or run on
    /// its own connection while the server is under load.
    pub fn stats(&mut self) -> Result<Vec<StatEntry>> {
        let mut last: Option<CoreError> = None;
        for attempt in 0..=self.config.retry.max_attempts {
            if attempt > 0 {
                let pause = self.backoff(attempt - 1);
                thread::sleep(pause);
            }
            match self.try_stats() {
                Ok(entries) => return Ok(entries),
                Err(e) if e.is_transient() => {
                    self.conn = None;
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| CoreError::Io("retries exhausted".into())))
    }

    fn try_stats(&mut self) -> Result<Vec<StatEntry>> {
        let max_line = self.config.limits.max_line_bytes;
        let conn = self.ensure_conn()?;
        writeln!(conn.out, "{}", Request::Stats).map_err(CoreError::from)?;
        let mut entries = Vec::new();
        loop {
            let line = read_bounded_line(&mut conn.reader, max_line)?
                .ok_or_else(|| CoreError::Io("server closed the connection".into()))?;
            match ServerMsg::parse(&line)? {
                ServerMsg::End => break,
                ServerMsg::Stat(e) => entries.push(e),
                ServerMsg::Busy { detail } => {
                    return Err(CoreError::overload("connection", detail));
                }
                ServerMsg::Err { reason } => {
                    return Err(CoreError::protocol(reason));
                }
                other => {
                    return Err(CoreError::protocol(format!(
                        "unexpected {other} in a STATS reply"
                    )));
                }
            }
        }
        Ok(entries)
    }

    /// Ends the session politely and drops the connection.
    pub fn quit(mut self) -> Result<()> {
        if let Some(conn) = self.conn.as_mut() {
            writeln!(conn.out, "{}", Request::Quit).map_err(CoreError::from)?;
        }
        Ok(())
    }

    /// Capped exponential backoff with ±50% seeded jitter.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base_ms = self.config.retry.base.as_millis() as u64;
        let cap_ms = self.config.retry.cap.as_millis() as u64;
        let exp = base_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(cap_ms);
        let jitter: f64 = self.rng.gen_range(0.5..1.5);
        Duration::from_millis(((exp as f64) * jitter) as u64)
    }

    fn ensure_conn(&mut self) -> Result<&mut Conn> {
        if let Some(conn) = self.conn.take() {
            return Ok(self.conn.insert(conn));
        }
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        Ok(self.conn.insert(Conn {
            reader: BufReader::new(stream.try_clone()?),
            out: stream,
        }))
    }

    fn try_fetch(&mut self, doc: DocId) -> Result<FetchResult> {
        // Piggyback a digest of (up to the cap) cached ids, §3.4-style.
        let have: Vec<DocId> = self
            .cache
            .iter()
            .take(self.config.limits.max_have_ids)
            .copied()
            .collect();
        let max_line = self.config.limits.max_line_bytes;
        let conn = self.ensure_conn()?;
        let req = Request::Get { doc, have };
        writeln!(conn.out, "{req}").map_err(CoreError::from)?;

        let mut size = 0u64;
        let mut received = Vec::new();
        let mut pushed = Vec::new();
        loop {
            let line = read_bounded_line(&mut conn.reader, max_line)?
                .ok_or_else(|| CoreError::Io("server closed the connection".into()))?;
            match ServerMsg::parse(&line)? {
                ServerMsg::End => break,
                ServerMsg::Doc { doc: d, size: s } => {
                    size = s;
                    received.push(d);
                }
                ServerMsg::Push { doc: d, .. } => {
                    received.push(d);
                    pushed.push(d);
                }
                ServerMsg::Busy { detail } => {
                    return Err(CoreError::overload("connection", detail));
                }
                ServerMsg::Err { reason } => {
                    return Err(CoreError::protocol(reason));
                }
                ServerMsg::Stat(_) => {
                    return Err(CoreError::protocol("unexpected STAT in a GET reply"));
                }
            }
        }
        self.cache.extend(received);
        Ok(FetchResult {
            doc,
            size,
            pushed,
            from_cache: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_jitters_within_bounds() {
        let mut c = SpecClient::new(
            "127.0.0.1:1".parse().unwrap(),
            ClientConfig {
                retry: RetryConfig {
                    max_attempts: 8,
                    base: Duration::from_millis(100),
                    cap: Duration::from_millis(400),
                    jitter_seed: 7,
                },
                ..ClientConfig::default()
            },
        )
        .unwrap();
        for (attempt, nominal) in [(0u32, 100u64), (1, 200), (2, 400), (3, 400), (62, 400)] {
            let d = c.backoff(attempt).as_millis() as u64;
            assert!(
                d >= nominal / 2 && d < nominal * 3 / 2,
                "attempt {attempt}: {d}ms outside [{}, {})",
                nominal / 2,
                nominal * 3 / 2
            );
        }
    }

    #[test]
    fn jitter_is_reproducible_for_a_seed() {
        let cfg = ClientConfig::default();
        let addr = "127.0.0.1:1".parse().unwrap();
        let mut a = SpecClient::new(addr, cfg).unwrap();
        let mut b = SpecClient::new(addr, cfg).unwrap();
        for attempt in 0..6 {
            assert_eq!(a.backoff(attempt), b.backoff(attempt));
        }
    }

    #[test]
    fn rejects_bad_retry_config() {
        let addr = "127.0.0.1:1".parse().unwrap();
        let mut cfg = ClientConfig::default();
        cfg.retry.base = Duration::ZERO;
        assert!(SpecClient::new(addr, cfg).is_err());
        let mut cfg = ClientConfig::default();
        cfg.retry.cap = Duration::from_millis(1);
        assert!(SpecClient::new(addr, cfg).is_err());
    }

    #[test]
    fn unreachable_server_fails_with_transient_io_after_retries() {
        // Port 1 on localhost refuses immediately.
        let mut c = SpecClient::new(
            "127.0.0.1:1".parse().unwrap(),
            ClientConfig {
                retry: RetryConfig {
                    max_attempts: 1,
                    base: Duration::from_millis(1),
                    cap: Duration::from_millis(2),
                    jitter_seed: 0,
                },
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let e = c.fetch(DocId::new(0)).unwrap_err();
        assert!(e.is_transient(), "expected transient I/O, got {e:?}");
    }
}
