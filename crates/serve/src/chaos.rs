//! Seeded slow-client chaos harness.
//!
//! Drives many concurrent protocol clients from a **single thread** of
//! nonblocking sockets against a live server, while a seeded
//! [`FaultPlan`] degrades each client independently: `slow-client`
//! windows stretch the gap between sent chunks, `partial-write` windows
//! shrink every write to one byte, and `stall` windows freeze the
//! client entirely. Because the harness itself is an event loop, it can
//! hold hundreds of misbehaving connections open at once — exactly the
//! load shape that pins one thread per peer on the blocking baseline
//! ([`crate::blocking`]) but only costs buffers on the reactor.
//!
//! The schedule is deterministic given `(seed, horizon, clients)`: the
//! same windows hit the same clients at the same *simulated* offsets.
//! Wall-clock elapsed milliseconds are mapped 1:1 onto [`SimTime`], so
//! the run is reproducible in shape even though socket interleaving is
//! not — which is why chaos verdicts are counters and invariants
//! (every response well-formed, zero refusals) rather than byte
//! comparisons. Byte-level determinism is the job of
//! [`crate::session`]'s record/replay layer.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use specweb_core::ids::NodeId;
use specweb_core::obs::{self, Channel};
use specweb_core::rng::SeedTree;
use specweb_core::time::{Duration as SimDuration, SimTime};
use specweb_core::{CoreError, Result};
use specweb_netsim::fault::{FaultConfig, FaultPlan};
use specweb_netsim::topology::Topology;

/// Knobs for one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Concurrent client connections, all held open together.
    pub clients: usize,
    /// `GET` requests each client issues before `QUIT`.
    pub requests_per_client: usize,
    /// Catalog size; request ids cycle through `0..n_docs`.
    pub n_docs: usize,
    /// Master seed for the fault schedule.
    pub seed: u64,
    /// Simulated horizon the fault windows are generated over. Wall
    /// milliseconds map 1:1 onto this clock.
    pub horizon: SimDuration,
    /// Hard wall-clock budget; clients still open at the deadline are
    /// counted as timed out.
    pub deadline: Duration,
    /// Pacing unit between chunks inside a slow-client window: the gap
    /// is this delay times the window's slowdown factor.
    pub chunk_delay: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            clients: 64,
            requests_per_client: 2,
            n_docs: 16,
            seed: 7,
            horizon: SimDuration::from_millis(2_000),
            deadline: Duration::from_secs(20),
            chunk_delay: Duration::from_millis(1),
        }
    }
}

impl ChaosConfig {
    /// Checks all knobs.
    pub fn validate(&self) -> Result<()> {
        if self.clients == 0 || self.requests_per_client == 0 || self.n_docs == 0 {
            return Err(CoreError::invalid_config(
                "chaos",
                "clients, requests_per_client and n_docs must be positive",
            ));
        }
        if self.deadline.is_zero() {
            return Err(CoreError::invalid_config(
                "chaos.deadline",
                "wall-clock deadline must be positive",
            ));
        }
        Ok(())
    }
}

/// What one chaos run observed. All counts are whole clients unless
/// noted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosReport {
    /// Clients driven.
    pub clients: usize,
    /// Clients whose sessions completed cleanly: every request answered
    /// with a well-formed `DOC…END` block, then EOF after `QUIT`.
    pub completed: usize,
    /// Clients refused with `BUSY`.
    pub refused: usize,
    /// Clients that saw a malformed or truncated response.
    pub malformed: usize,
    /// Clients still open when the wall-clock deadline expired.
    pub timed_out: usize,
    /// Total `GET` requests issued (all clients).
    pub requests_sent: u64,
    /// Total well-formed `DOC…END` responses received (all clients).
    pub responses_ok: u64,
}

impl ChaosReport {
    /// True when every client completed with full correctness: nothing
    /// refused, malformed, or timed out, and every request answered.
    pub fn clean(&self) -> bool {
        self.completed == self.clients
            && self.refused == 0
            && self.malformed == 0
            && self.timed_out == 0
            && self.responses_ok == self.requests_sent
    }
}

/// One nonblocking client connection under chaos.
struct ChaosClient {
    stream: TcpStream,
    node: NodeId,
    script: Vec<u8>,
    sent: usize,
    next_send: Instant,
    rx: Vec<u8>,
    scan_from: usize,
    requests: u64,
    ends: u64,
    in_response: bool,
    busy: bool,
    malformed: bool,
    eof: bool,
}

impl ChaosClient {
    /// Consumes newly-arrived complete lines, checking response shape:
    /// each request's block is `DOC` (or a keep-alive `ERR`), zero or
    /// more `PUSH`es, then `END`.
    fn scan_lines(&mut self) {
        while let Some(pos) = self.rx[self.scan_from..].iter().position(|&b| b == b'\n') {
            let line_end = self.scan_from + pos;
            let line = &self.rx[self.scan_from..line_end];
            self.scan_from = line_end + 1;
            let line = String::from_utf8_lossy(line);
            let word = line.split_whitespace().next().unwrap_or("");
            match word {
                "DOC" if !self.in_response => self.in_response = true,
                "PUSH" if self.in_response => {}
                "END" if self.in_response => {
                    self.in_response = false;
                    self.ends += 1;
                }
                "BUSY" => self.busy = true,
                // A keep-alive ERR replaces a whole DOC…END block.
                "ERR" if !self.in_response => self.ends += 1,
                _ => self.malformed = true,
            }
        }
        // Don't let the receive buffer grow without bound: everything
        // before scan_from has been consumed.
        if self.scan_from > 64 * 1024 {
            self.rx.drain(..self.scan_from);
            self.scan_from = 0;
        }
    }

    fn finished(&self) -> bool {
        self.eof || self.busy || self.malformed
    }
}

/// Connects `cfg.clients` sockets to `addr` and drives them all from
/// this thread until every session finishes or the deadline expires.
/// Returns the aggregate report; panics never, asserts nothing — the
/// caller decides what the numbers must look like.
pub fn run_chaos(addr: SocketAddr, cfg: &ChaosConfig) -> Result<ChaosReport> {
    cfg.validate()?;
    // One leaf per client: each gets an independent seeded schedule.
    let topo = Topology::two_level(1, cfg.clients as u32);
    let fault_cfg = FaultConfig::chaotic(cfg.horizon);
    let plan = FaultPlan::generate(&SeedTree::new(cfg.seed).child("chaos"), &topo, &fault_cfg)?;
    let leaves: Vec<NodeId> = topo.leaves().to_vec();

    let start = Instant::now();
    let mut clients: Vec<ChaosClient> = Vec::with_capacity(cfg.clients);
    for i in 0..cfg.clients {
        let stream = TcpStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        let mut script = Vec::new();
        for k in 0..cfg.requests_per_client {
            let doc = (i + k) % cfg.n_docs;
            script.extend_from_slice(format!("GET {doc}\n").as_bytes());
        }
        script.extend_from_slice(b"QUIT\n");
        clients.push(ChaosClient {
            stream,
            node: leaves[i % leaves.len()],
            script,
            sent: 0,
            next_send: start,
            rx: Vec::new(),
            scan_from: 0,
            requests: cfg.requests_per_client as u64,
            ends: 0,
            in_response: false,
            busy: false,
            malformed: false,
            eof: false,
        });
    }

    let deadline = start + cfg.deadline;
    let mut buf = [0u8; 4096];
    loop {
        let now = Instant::now();
        if now >= deadline || clients.iter().all(|c| c.finished()) {
            break;
        }
        let t = SimTime::from_millis(now.duration_since(start).as_millis() as u64);
        let mut progress = false;

        for c in clients.iter_mut() {
            if c.finished() {
                continue;
            }
            // A stalled client is frozen outright — it neither sends
            // nor drains, which is precisely the peer shape that pins a
            // handler thread on the blocking baseline.
            if plan.stalled_until(c.node, t).is_some() {
                continue;
            }

            if c.sent < c.script.len() && now >= c.next_send {
                let factor = plan.client_slow_factor(c.node, t);
                let chunk = if plan.partial_write_active(c.node, t) {
                    1
                } else if factor > 1.0 {
                    8
                } else {
                    c.script.len() - c.sent
                };
                let hi = (c.sent + chunk).min(c.script.len());
                match c.stream.write(&c.script[c.sent..hi]) {
                    Ok(n) => {
                        c.sent += n;
                        progress = n > 0 || progress;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        c.malformed = true;
                        continue;
                    }
                }
                if factor > 1.0 {
                    c.next_send = now + c.chunk_pacing(cfg.chunk_delay, factor);
                }
            }

            match c.stream.read(&mut buf) {
                Ok(0) => {
                    c.eof = true;
                    progress = true;
                    c.scan_lines();
                }
                Ok(n) => {
                    c.rx.extend_from_slice(&buf[..n]);
                    c.scan_lines();
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => c.malformed = true,
            }
        }

        if !progress {
            thread::sleep(Duration::from_micros(200));
        }
    }

    let mut report = ChaosReport {
        clients: cfg.clients,
        completed: 0,
        refused: 0,
        malformed: 0,
        timed_out: 0,
        requests_sent: 0,
        responses_ok: 0,
    };
    for c in &clients {
        report.requests_sent = report.requests_sent.saturating_add(c.requests);
        report.responses_ok += c.ends.min(c.requests);
        if c.busy {
            report.refused += 1;
        } else if c.malformed {
            report.malformed += 1;
        } else if c.eof && c.ends == c.requests {
            report.completed += 1;
        } else {
            report.timed_out += 1;
        }
    }

    let m = &obs::global().metrics;
    m.counter_on("chaos.clients", Channel::WallClock)
        .add(report.clients as u64);
    m.counter_on("chaos.completed", Channel::WallClock)
        .add(report.completed as u64);
    m.counter_on("chaos.refused", Channel::WallClock)
        .add(report.refused as u64);
    m.counter_on("chaos.malformed", Channel::WallClock)
        .add(report.malformed as u64);
    m.counter_on("chaos.timed_out", Channel::WallClock)
        .add(report.timed_out as u64);
    obs::global().events.wall_event(
        "serve",
        "chaos.done",
        format!(
            "clients={} completed={} refused={} malformed={} timed_out={}",
            report.clients, report.completed, report.refused, report.malformed, report.timed_out
        ),
    );
    Ok(report)
}

impl ChaosClient {
    /// Gap until the next chunk inside a slow window.
    fn chunk_pacing(&self, unit: Duration, factor: f64) -> Duration {
        Duration::from_micros((unit.as_micros() as f64 * factor) as u64)
    }
}
