//! Deterministic session record/replay — `specweb-session/v1`.
//!
//! Recording a live serve session is inherently wall-clock work: which
//! bytes arrive in which fragments depends on sockets and scheduling.
//! The trace captures exactly those nondeterministic inputs — accepted
//! connections, request-byte fragments, service-level (shed/overload)
//! decisions, refusals — as an ordered event log, together with a
//! [`KnowledgeSpec`] describing how to rebuild the server's estimation
//! state from a seed. Everything downstream of those inputs is the pure
//! [`ConnCore`] state machine, so **replaying a given trace is
//! byte-identical**: same response bytes, same shed decisions, same
//! per-connection digests, on every run and for any `--jobs` count
//! (the closure build is worker-count invariant).
//!
//! The committed golden fixture under `crates/serve/tests/fixtures/`
//! turns this into a regression harness: any change to the protocol,
//! the speculation policy, or the state machine that alters a single
//! response byte diffs against the fixture's digests.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use specweb_core::obs;
use specweb_core::time::SimTime;
use specweb_core::{Bytes, CoreError, Result};
use specweb_netsim::topology::Topology;
use specweb_spec::deps::DepMatrixBuilder;
use specweb_spec::policy::Policy;
use specweb_trace::generator::{TraceConfig, TraceGenerator};

use crate::conn::{ConnCore, OutputDigest};
use crate::overload::ServiceLevel;
use crate::protocol::{ProtocolLimits, StatEntry};
use crate::server::ServerKnowledge;

/// The trace schema identifier this module reads and writes.
pub const SESSION_SCHEMA: &str = "specweb-session/v1";

/// How to rebuild [`ServerKnowledge`] deterministically from a seed —
/// the §3.2 off-line estimation step, captured as parameters instead of
/// matrices so the trace stays small and the replay proves the whole
/// estimation pipeline, not just the wire handling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeSpec {
    /// Master seed for the synthetic estimation trace.
    pub seed: u64,
    /// Trace span in days.
    pub duration_days: u64,
    /// Sessions per day across the population.
    pub sessions_per_day: u64,
    /// Speculation threshold `T_p`.
    pub tp: f64,
    /// Closure pruning floor.
    pub closure_floor: f64,
    /// Closure row cap (safety valve).
    pub closure_cap: u64,
    /// Co-access window for dependency estimation, in seconds.
    pub dep_window_secs: u64,
    /// Minimum co-access support for a dependency edge.
    pub dep_min_support: u64,
}

impl KnowledgeSpec {
    /// The spec used by the golden fixture and the demo recorder — the
    /// same shape as the E2E degradation tests.
    pub fn demo(seed: u64) -> KnowledgeSpec {
        KnowledgeSpec {
            seed,
            duration_days: 8,
            sessions_per_day: 60,
            tp: 0.25,
            closure_floor: 0.05,
            closure_cap: 64,
            dep_window_secs: 5,
            dep_min_support: 2,
        }
    }

    /// Rebuilds the server knowledge. `jobs` parallelizes the closure
    /// build; the result is bit-identical for every worker count, which
    /// is what makes `--replay --jobs N` a determinism check.
    pub fn build(&self, jobs: usize) -> Result<ServerKnowledge> {
        let topo = Topology::two_level(4, 6);
        let mut tc = TraceConfig::small(self.seed);
        tc.duration_days = self.duration_days;
        // usize::MAX on (impossible) overflow trips the generator's own
        // session-volume validation instead of panicking here.
        tc.sessions_per_day = usize::try_from(self.sessions_per_day).unwrap_or(usize::MAX);
        let trace = TraceGenerator::new(tc)?.generate(&topo)?;
        let direct = DepMatrixBuilder::estimate(
            &trace.accesses,
            specweb_core::time::Duration::from_secs(self.dep_window_secs),
            self.dep_min_support,
        );
        let closure =
            direct.closure_jobs(self.closure_floor, self.closure_cap as usize, jobs.max(1))?;
        Ok(ServerKnowledge {
            catalog: trace.catalog.clone(),
            direct,
            closure,
            policy: Policy::Threshold { tp: self.tp },
            max_size: Bytes::INFINITE,
        })
    }
}

/// One recorded input to the event loop, in arrival order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// A connection was admitted and assigned an id.
    Accept {
        /// The connection id (accept order).
        conn: u64,
    },
    /// The overload ladder changed level; applies to all subsequent
    /// events until the next change. 0 = full, 1 = demand-only,
    /// 2 = refusing.
    Level {
        /// The encoded [`ServiceLevel`].
        level: u8,
    },
    /// One fragment of request bytes, exactly as the transport
    /// delivered it (hex-encoded; fragmentation is preserved so the
    /// replay exercises the same decoder paths).
    Data {
        /// The connection it arrived on.
        conn: u64,
        /// The fragment, hex-encoded.
        hex: String,
    },
    /// The peer half-closed its write side.
    Eof {
        /// The connection that reached end of input.
        conn: u64,
    },
    /// The server answered a `STATS` request with this snapshot. The
    /// entries are wall-clock server state — an *input* to the replay
    /// (like the service level), pushed verbatim so the regenerated
    /// bytes match the recording.
    Stats {
        /// The connection the reply went to.
        conn: u64,
        /// The exact `STAT` lines answered, in reply order.
        entries: Vec<StatEntry>,
    },
    /// The connection was closed (peer quit, violation, drain, or
    /// shutdown); its summary was finalized at this point.
    Close {
        /// The closed connection.
        conn: u64,
    },
    /// A connection was refused with `BUSY` at the hard cap.
    Refused,
}

/// Per-connection outcome, finalized at close.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnSummary {
    /// Connection id.
    pub conn: u64,
    /// `GET` requests served.
    pub requests: u64,
    /// Speculative pushes sent.
    pub pushes: u64,
    /// Demand-only responses (speculation shed).
    pub shed: u64,
    /// Protocol violations.
    pub protocol_errors: u64,
    /// Bytes received.
    pub bytes_in: u64,
    /// Bytes emitted.
    pub bytes_out: u64,
    /// FNV-1a digest of every emitted byte, hex.
    pub digest: String,
}

/// Whole-session outcome: per-connection summaries in close order plus
/// totals and a combined digest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Connections admitted.
    pub accepted: u64,
    /// Connections refused with `BUSY`.
    pub refused: u64,
    /// Total requests served.
    pub requests: u64,
    /// Total pushes.
    pub pushes: u64,
    /// Total demand-only responses.
    pub shed: u64,
    /// Total protocol violations.
    pub protocol_errors: u64,
    /// Per-connection summaries, in close order.
    pub conns: Vec<ConnSummary>,
    /// Combined digest over the per-connection digests (in close
    /// order) and the refusal count.
    pub digest: String,
}

/// A complete `specweb-session/v1` trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionTrace {
    /// Schema tag, always [`SESSION_SCHEMA`].
    pub schema: String,
    /// How to rebuild the server knowledge.
    pub knowledge: KnowledgeSpec,
    /// Wire cap: longest accepted line.
    pub max_line_bytes: u64,
    /// Wire cap: largest accepted `HAVE` digest.
    pub max_have_ids: u64,
    /// The ordered event log.
    pub events: Vec<SessionEvent>,
    /// The outcome the recording server observed; replays must
    /// reproduce it exactly.
    pub summary: SessionSummary,
}

impl SessionTrace {
    /// Parses a trace from JSON, checking the schema tag.
    pub fn from_json(text: &str) -> Result<SessionTrace> {
        let trace: SessionTrace = serde_json::from_str(text)
            .map_err(|e| CoreError::protocol(format!("bad session trace: {e}")))?;
        if trace.schema != SESSION_SCHEMA {
            return Err(CoreError::invalid_config(
                "session.schema",
                format!("expected {SESSION_SCHEMA}, got {}", trace.schema),
            ));
        }
        Ok(trace)
    }

    /// Serializes the trace as pretty JSON (the `session.json` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// The protocol limits the session ran under.
    pub fn limits(&self) -> ProtocolLimits {
        ProtocolLimits {
            max_line_bytes: self.max_line_bytes as usize,
            max_have_ids: self.max_have_ids as usize,
        }
    }
}

pub(crate) fn level_code(level: ServiceLevel) -> u8 {
    match level {
        ServiceLevel::Full => 0,
        ServiceLevel::DemandOnly => 1,
        ServiceLevel::Refusing => 2,
    }
}

fn level_from_code(code: u8) -> Result<ServiceLevel> {
    match code {
        0 => Ok(ServiceLevel::Full),
        1 => Ok(ServiceLevel::DemandOnly),
        2 => Ok(ServiceLevel::Refusing),
        other => Err(CoreError::protocol(format!(
            "bad service level code {other}"
        ))),
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(CoreError::protocol("bad hex fragment in trace"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| CoreError::protocol("bad hex fragment in trace"))
        })
        .collect()
}

fn summarize(core: &ConnCore) -> ConnSummary {
    let c = core.counters();
    ConnSummary {
        conn: core.id(),
        requests: c.requests,
        pushes: c.pushes,
        shed: c.shed,
        protocol_errors: c.protocol_errors,
        bytes_in: c.bytes_in,
        bytes_out: c.bytes_out,
        digest: core.digest_hex(),
    }
}

fn build_summary(conns: Vec<ConnSummary>, accepted: u64, refused: u64) -> SessionSummary {
    let mut digest = OutputDigest::new();
    let mut requests = 0u64;
    let mut pushes = 0u64;
    let mut shed = 0u64;
    let mut protocol_errors = 0u64;
    for c in &conns {
        digest.update(c.digest.as_bytes());
        requests = requests.saturating_add(c.requests);
        pushes = pushes.saturating_add(c.pushes);
        shed = shed.saturating_add(c.shed);
        protocol_errors = protocol_errors.saturating_add(c.protocol_errors);
    }
    digest.update(format!("refused={refused}").as_bytes());
    SessionSummary {
        accepted,
        refused,
        requests,
        pushes,
        shed,
        protocol_errors,
        conns,
        digest: digest.hex(),
    }
}

/// Accumulates a live session into a [`SessionTrace`]. Owned by the
/// reactor thread; no synchronization needed.
#[derive(Debug)]
pub struct SessionRecorder {
    spec: KnowledgeSpec,
    limits: ProtocolLimits,
    events: Vec<SessionEvent>,
    conns: Vec<ConnSummary>,
    accepted: u64,
    refused: u64,
    last_level: Option<u8>,
}

impl SessionRecorder {
    /// A recorder for a server built from `spec` with wire caps
    /// `limits`.
    pub fn new(spec: KnowledgeSpec, limits: ProtocolLimits) -> SessionRecorder {
        SessionRecorder {
            spec,
            limits,
            events: Vec::new(),
            conns: Vec::new(),
            accepted: 0,
            refused: 0,
            last_level: None,
        }
    }

    /// Records the service level in force for subsequent events,
    /// deduplicating unchanged levels.
    pub fn on_level(&mut self, level: ServiceLevel) {
        let code = level_code(level);
        if self.last_level != Some(code) {
            self.last_level = Some(code);
            self.events.push(SessionEvent::Level { level: code });
        }
    }

    /// Records an admitted connection.
    pub fn on_accept(&mut self, conn: u64) {
        self.accepted += 1;
        self.events.push(SessionEvent::Accept { conn });
    }

    /// Records one request-byte fragment exactly as it arrived.
    pub fn on_data(&mut self, conn: u64, bytes: &[u8]) {
        self.events.push(SessionEvent::Data {
            conn,
            hex: hex_encode(bytes),
        });
    }

    /// Records the peer's end of input.
    pub fn on_eof(&mut self, conn: u64) {
        self.events.push(SessionEvent::Eof { conn });
    }

    /// Records a `STATS` reply and the exact snapshot it carried.
    pub fn on_stats(&mut self, conn: u64, entries: &[StatEntry]) {
        self.events.push(SessionEvent::Stats {
            conn,
            entries: entries.to_vec(),
        });
    }

    /// Records a `BUSY` refusal.
    pub fn on_refused(&mut self) {
        self.refused += 1;
        self.events.push(SessionEvent::Refused);
    }

    /// Records a connection close and finalizes its summary.
    pub fn on_close(&mut self, core: &ConnCore) {
        self.events.push(SessionEvent::Close { conn: core.id() });
        self.conns.push(summarize(core));
    }

    /// Finishes the trace.
    pub fn finish(self) -> SessionTrace {
        SessionTrace {
            schema: SESSION_SCHEMA.to_string(),
            knowledge: self.spec,
            max_line_bytes: self.limits.max_line_bytes as u64,
            max_have_ids: self.limits.max_have_ids as u64,
            summary: build_summary(self.conns, self.accepted, self.refused),
            events: self.events,
        }
    }
}

/// What a replay produced and how it compared to the recorded summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// The summary the replayed state machines produced.
    pub summary: SessionSummary,
    /// Every way the replay diverged from the recorded summary; empty
    /// means the trace replayed byte-identically.
    pub divergences: Vec<String>,
    /// Events processed.
    pub events: u64,
}

impl ReplayOutcome {
    /// Did the replay reproduce the recording exactly?
    pub fn matches(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Serializes the outcome as pretty JSON. Deterministic: contains
    /// no wall-clock data, so two replays of one trace produce
    /// byte-identical files.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }
}

/// Re-drives the recorded event log through fresh [`ConnCore`] state
/// machines and diffs the outcome against the recorded summary.
///
/// This is a registered deterministic root (DESIGN §9): everything it
/// touches — knowledge rebuild, frame decoding, speculation decisions,
/// digests — must be free of clocks, ambient randomness and
/// hash-iteration order, so a trace replays bit-identically forever.
pub fn replay(trace: &SessionTrace, jobs: usize) -> Result<ReplayOutcome> {
    if trace.schema != SESSION_SCHEMA {
        return Err(CoreError::invalid_config(
            "session.schema",
            format!("expected {SESSION_SCHEMA}, got {}", trace.schema),
        ));
    }
    let limits = trace.limits();
    limits.validate()?;
    let knowledge = trace.knowledge.build(jobs)?;
    let tracer = &obs::global().events;

    let mut live: BTreeMap<u64, ConnCore> = BTreeMap::new();
    let mut conns: Vec<ConnSummary> = Vec::new();
    let mut level = ServiceLevel::Full;
    let mut accepted = 0u64;
    let mut refused = 0u64;

    for (idx, event) in trace.events.iter().enumerate() {
        // Deterministic per-connection event tracing: the event index
        // is the replay's logical clock.
        let at = SimTime::from_millis(idx as u64);
        match event {
            SessionEvent::Level { level: code } => level = level_from_code(*code)?,
            SessionEvent::Accept { conn } => {
                accepted += 1;
                tracer.event(at, "serve", "replay.accept", format!("conn={conn}"));
                live.insert(*conn, ConnCore::new(*conn, limits));
            }
            SessionEvent::Data { conn, hex } => {
                let bytes = hex_decode(hex)?;
                let core = live.get_mut(conn).ok_or_else(|| {
                    CoreError::protocol(format!("trace data for unknown conn {conn}"))
                })?;
                core.on_bytes(&bytes, level, &knowledge);
            }
            SessionEvent::Eof { conn } => {
                let core = live.get_mut(conn).ok_or_else(|| {
                    CoreError::protocol(format!("trace eof for unknown conn {conn}"))
                })?;
                core.on_eof();
            }
            SessionEvent::Stats { conn, entries } => {
                let core = live.get_mut(conn).ok_or_else(|| {
                    CoreError::protocol(format!("trace stats for unknown conn {conn}"))
                })?;
                // Consume the parsed request (keeps the pending count
                // balanced) and push the recorded snapshot verbatim.
                core.take_stats_requests();
                core.push_stats_reply(entries);
            }
            SessionEvent::Close { conn } => {
                let core = live.remove(conn).ok_or_else(|| {
                    CoreError::protocol(format!("trace close for unknown conn {conn}"))
                })?;
                tracer.event(
                    at,
                    "serve",
                    "replay.close",
                    format!("conn={conn} digest={}", core.digest_hex()),
                );
                conns.push(summarize(&core));
            }
            SessionEvent::Refused => {
                refused += 1;
                tracer.event(at, "serve", "replay.refused", String::new());
            }
        }
    }
    // A well-formed trace closes every connection; tolerate truncated
    // ones by finalizing leftovers in id order.
    for (_, core) in live {
        conns.push(summarize(&core));
    }

    let summary = build_summary(conns, accepted, refused);
    let divergences = diff_summaries(&trace.summary, &summary);
    Ok(ReplayOutcome {
        summary,
        divergences,
        events: trace.events.len() as u64,
    })
}

/// Structured diff of recorded vs replayed summaries.
fn diff_summaries(recorded: &SessionSummary, replayed: &SessionSummary) -> Vec<String> {
    let mut out = Vec::new();
    let totals = [
        ("accepted", recorded.accepted, replayed.accepted),
        ("refused", recorded.refused, replayed.refused),
        ("requests", recorded.requests, replayed.requests),
        ("pushes", recorded.pushes, replayed.pushes),
        ("shed", recorded.shed, replayed.shed),
        (
            "protocol_errors",
            recorded.protocol_errors,
            replayed.protocol_errors,
        ),
    ];
    for (what, rec, rep) in totals {
        if rec != rep {
            out.push(format!("{what}: recorded {rec}, replayed {rep}"));
        }
    }
    if recorded.conns.len() != replayed.conns.len() {
        out.push(format!(
            "connection count: recorded {}, replayed {}",
            recorded.conns.len(),
            replayed.conns.len()
        ));
    }
    for (rec, rep) in recorded.conns.iter().zip(&replayed.conns) {
        if rec != rep {
            out.push(format!(
                "conn {}: recorded digest {} ({} req/{} push/{} shed), \
                 replayed digest {} ({} req/{} push/{} shed)",
                rec.conn,
                rec.digest,
                rec.requests,
                rec.pushes,
                rec.shed,
                rep.digest,
                rep.requests,
                rep.pushes,
                rep.shed,
            ));
        }
    }
    if recorded.digest != replayed.digest {
        out.push(format!(
            "session digest: recorded {}, replayed {}",
            recorded.digest, replayed.digest
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let data = [0u8, 1, 0x7f, 0xff, b'\n'];
        let h = hex_encode(&data);
        assert_eq!(h, "00017fff0a");
        assert_eq!(hex_decode(&h).unwrap(), data);
        assert!(hex_decode("0").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn level_codes_round_trip() {
        for l in [
            ServiceLevel::Full,
            ServiceLevel::DemandOnly,
            ServiceLevel::Refusing,
        ] {
            assert_eq!(level_from_code(level_code(l)).unwrap(), l);
        }
        assert!(level_from_code(9).is_err());
    }

    #[test]
    fn knowledge_spec_builds_identically_for_any_job_count() {
        let spec = KnowledgeSpec::demo(77);
        let a = spec.build(1).unwrap();
        let b = spec.build(4).unwrap();
        // DepMatrix carries no PartialEq; its serde form is id-ordered
        // and therefore canonical, so byte equality is matrix equality.
        let json = |m: &specweb_spec::deps::DepMatrix| {
            serde_json::to_string_pretty(m).expect("matrices serialize")
        };
        assert_eq!(json(&a.closure), json(&b.closure));
        assert_eq!(json(&a.direct), json(&b.direct));
        assert_eq!(a.catalog.len(), b.catalog.len());
    }

    fn demo_trace() -> SessionTrace {
        // A hand-built session: one connection GETs doc 0 under full
        // service (fragmented mid-line) and probes STATS mid-session,
        // a second is refused, a third sends garbage.
        let spec = KnowledgeSpec::demo(77);
        let limits = ProtocolLimits::default();
        let k = spec.build(1).unwrap();
        let mut rec = SessionRecorder::new(spec, limits);

        rec.on_level(ServiceLevel::Full);
        rec.on_accept(0);
        let mut c0 = ConnCore::new(0, limits);
        for frag in [&b"GE"[..], &b"T 0\n"[..], &b"STATS\n"[..]] {
            rec.on_data(0, frag);
            c0.on_bytes(frag, ServiceLevel::Full, &k);
        }
        // The reactor answers STATS with a wall-clock snapshot; the
        // recording captures the exact entries as a replay input.
        assert_eq!(c0.take_stats_requests(), 1);
        let entries = vec![
            StatEntry::new("requests", 1),
            StatEntry::new("live_connections", 1),
        ];
        rec.on_stats(0, &entries);
        c0.push_stats_reply(&entries);
        rec.on_data(0, b"QUIT\n");
        c0.on_bytes(b"QUIT\n", ServiceLevel::Full, &k);
        rec.on_refused();
        rec.on_accept(2);
        let mut c2 = ConnCore::new(2, limits);
        rec.on_data(2, b"EVIL\n");
        c2.on_bytes(b"EVIL\n", ServiceLevel::Full, &k);
        rec.on_close(&c0);
        rec.on_close(&c2);
        rec.finish()
    }

    #[test]
    fn recorded_trace_replays_byte_identically_across_jobs() {
        let trace = demo_trace();
        let a = replay(&trace, 1).unwrap();
        assert!(a.matches(), "divergences: {:?}", a.divergences);
        let b = replay(&trace, 4).unwrap();
        assert_eq!(a, b, "replay must be jobs-invariant");
        assert_eq!(a.summary.accepted, 2);
        assert_eq!(a.summary.refused, 1);
        assert_eq!(a.summary.requests, 1);
        assert_eq!(a.summary.protocol_errors, 1);
    }

    #[test]
    fn trace_round_trips_through_json() {
        let trace = demo_trace();
        let text = trace.to_json();
        let back = SessionTrace::from_json(&text).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn tampered_stats_snapshot_diverges() {
        // The STAT bytes feed the digest, so replaying a trace whose
        // recorded snapshot was altered must be caught.
        let mut trace = demo_trace();
        let tampered = trace.events.iter_mut().any(|e| {
            if let SessionEvent::Stats { entries, .. } = e {
                entries[0].value += 1;
                true
            } else {
                false
            }
        });
        assert!(tampered, "demo trace carries a stats event");
        let out = replay(&trace, 1).unwrap();
        assert!(!out.matches());
        assert!(out.divergences.iter().any(|d| d.contains("conn 0")));
    }

    #[test]
    fn tampered_trace_diverges() {
        let mut trace = demo_trace();
        trace.summary.conns[0].digest = "0000000000000000".into();
        let out = replay(&trace, 1).unwrap();
        assert!(!out.matches());
        assert!(out.divergences.iter().any(|d| d.contains("conn 0")));

        // Tampering with the combined digest is caught independently.
        let mut trace = demo_trace();
        trace.summary.digest = "0000000000000000".into();
        let out = replay(&trace, 1).unwrap();
        assert!(out.divergences.iter().any(|d| d.contains("session digest")));
    }

    #[test]
    fn bad_schema_is_rejected() {
        let mut trace = demo_trace();
        trace.schema = "specweb-session/v0".into();
        assert!(replay(&trace, 1).is_err());
        let text = trace.to_json();
        assert!(SessionTrace::from_json(&text).is_err());
    }
}
