//! Graceful degradation under load.
//!
//! The §2.3 insight, applied to the live server: speculation is the
//! *optional* part of the service, so it is the first thing to go. The
//! controller tracks active connections against two thresholds:
//!
//! * below `demand_only_at` — **full service**: every response carries
//!   the policy's speculative pushes;
//! * at or above `demand_only_at` — **demand-only**: requests are still
//!   answered, but speculation is shed (`Threshold(T_p)` effectively
//!   becomes `T_p = ∞`), trading the service-time win for capacity;
//! * at `max_connections` — **refusing**: new connections wait briefly
//!   for a slot (accept-loop backpressure) and are then turned away
//!   with `BUSY`, a transient error the client retries.
//!
//! Existing connections are never torn down by the controller — load
//! shedding degrades service quality before it degrades availability.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use specweb_core::{CoreError, Result};

/// What quality of service the server is currently giving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceLevel {
    /// Normal operation: demand service plus speculative pushes.
    Full,
    /// Overloaded: demand service only, speculation shed (§2.3).
    DemandOnly,
    /// Saturated: new connections are refused with `BUSY`.
    Refusing,
}

/// Connection-count thresholds for the degradation ladder.
#[derive(Debug, Clone, Copy)]
pub struct OverloadPolicy {
    /// Hard cap on concurrent connections.
    pub max_connections: usize,
    /// Active-connection count at which speculation is shed.
    pub demand_only_at: usize,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy {
            max_connections: 64,
            demand_only_at: 48,
        }
    }
}

impl OverloadPolicy {
    /// Checks the thresholds are ordered and positive.
    pub fn validate(&self) -> Result<()> {
        if self.max_connections == 0 {
            return Err(CoreError::invalid_config(
                "serve.max_connections",
                "must be positive",
            ));
        }
        if self.demand_only_at == 0 || self.demand_only_at > self.max_connections {
            return Err(CoreError::invalid_config(
                "serve.demand_only_at",
                format!(
                    "must be in [1, max_connections={}], got {}",
                    self.max_connections, self.demand_only_at
                ),
            ));
        }
        Ok(())
    }
}

/// Shared connection accounting; hands out RAII admission guards.
#[derive(Debug)]
pub struct OverloadController {
    policy: OverloadPolicy,
    active: AtomicUsize,
}

impl OverloadController {
    /// Builds a controller after validating the policy.
    pub fn new(policy: OverloadPolicy) -> Result<OverloadController> {
        policy.validate()?;
        Ok(OverloadController {
            policy,
            active: AtomicUsize::new(0),
        })
    }

    /// Number of currently admitted connections.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// The service level implied by the current load.
    pub fn level(&self) -> ServiceLevel {
        let n = self.active();
        if n >= self.policy.max_connections {
            ServiceLevel::Refusing
        } else if n >= self.policy.demand_only_at {
            ServiceLevel::DemandOnly
        } else {
            ServiceLevel::Full
        }
    }

    /// The configured thresholds.
    pub fn policy(&self) -> &OverloadPolicy {
        &self.policy
    }

    /// Tries to admit one connection; `None` when the server is full.
    /// The returned guard releases the slot on drop.
    pub fn try_admit(self: &Arc<Self>) -> Option<ConnectionGuard> {
        let mut n = self.active.load(Ordering::Acquire);
        loop {
            if n >= self.policy.max_connections {
                return None;
            }
            match self
                .active
                .compare_exchange_weak(n, n + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    return Some(ConnectionGuard {
                        ctl: Arc::clone(self),
                    })
                }
                Err(cur) => n = cur,
            }
        }
    }
}

/// RAII admission: one admitted connection; the slot frees on drop.
#[derive(Debug)]
pub struct ConnectionGuard {
    ctl: Arc<OverloadController>,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.ctl.active.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(max: usize, demand_only: usize) -> Arc<OverloadController> {
        Arc::new(
            OverloadController::new(OverloadPolicy {
                max_connections: max,
                demand_only_at: demand_only,
            })
            .unwrap(),
        )
    }

    #[test]
    fn degradation_ladder_sheds_speculation_before_connections() {
        let c = ctl(3, 2);
        assert_eq!(c.level(), ServiceLevel::Full);
        let g1 = c.try_admit().unwrap();
        assert_eq!(c.level(), ServiceLevel::Full);
        let g2 = c.try_admit().unwrap();
        // Two active: speculation shed, connections still accepted.
        assert_eq!(c.level(), ServiceLevel::DemandOnly);
        let g3 = c.try_admit().unwrap();
        assert_eq!(c.level(), ServiceLevel::Refusing);
        assert!(c.try_admit().is_none());
        drop(g3);
        assert_eq!(c.level(), ServiceLevel::DemandOnly);
        assert!(c.try_admit().is_some()); // guard dropped immediately
        drop(g2);
        drop(g1);
        assert_eq!(c.active(), 0);
        assert_eq!(c.level(), ServiceLevel::Full);
    }

    #[test]
    fn guards_release_under_concurrency() {
        let c = ctl(8, 8);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    if let Some(g) = c.try_admit() {
                        assert!(c.active() >= 1);
                        drop(g);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.active(), 0);
    }

    #[test]
    fn rejects_bad_policies() {
        assert!(OverloadController::new(OverloadPolicy {
            max_connections: 0,
            demand_only_at: 0,
        })
        .is_err());
        assert!(OverloadController::new(OverloadPolicy {
            max_connections: 4,
            demand_only_at: 5,
        })
        .is_err());
        assert!(OverloadController::new(OverloadPolicy {
            max_connections: 4,
            demand_only_at: 0,
        })
        .is_err());
    }
}
