//! Cooperative shutdown signalling.
//!
//! A [`ShutdownToken`] is a cheap clonable flag shared by the accept
//! loop and every connection handler. Triggering it asks each of them
//! to finish the request in flight and exit; nothing is torn down
//! forcibly, so a graceful shutdown completes within one read-timeout.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared one-way "stop" flag.
#[derive(Debug, Clone, Default)]
pub struct ShutdownToken(Arc<AtomicBool>);

impl ShutdownToken {
    /// A fresh, untriggered token.
    pub fn new() -> ShutdownToken {
        ShutdownToken::default()
    }

    /// Requests shutdown. Idempotent.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has shutdown been requested?
    pub fn is_triggered(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = ShutdownToken::new();
        let u = t.clone();
        assert!(!t.is_triggered());
        assert!(!u.is_triggered());
        u.trigger();
        assert!(t.is_triggered());
        t.trigger(); // idempotent
        assert!(u.is_triggered());
    }
}
