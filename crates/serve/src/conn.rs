//! The per-connection protocol state machine, factored pure.
//!
//! [`ConnCore`] is the deterministic heart of the event-loop server: a
//! byte-in/byte-out state machine with **no** sockets, clocks, threads
//! or randomness. The reactor feeds it whatever bytes the transport
//! produced (in whatever fragments they arrived) and drains whatever
//! bytes it generated; the record/replay layer feeds it the same
//! fragments from a trace and must observe byte-identical output.
//!
//! Two invariants make replay exact:
//!
//! * **fragmentation invariance** — the incremental line assembler
//!   produces the same lines (and the same typed errors, at the same
//!   byte offsets) no matter how the input is split into chunks, down
//!   to one byte at a time;
//! * **explicit service level** — the overload ladder's decision is an
//!   *input* to [`ConnCore::on_bytes`], not something the core reads
//!   from shared state, so a recorded shed decision replays as-is.
//!
//! Every output byte also feeds an FNV-1a digest; two sessions that
//! produced the same digest produced the same bytes.

use specweb_spec::policy::decide;

use crate::overload::ServiceLevel;
use crate::protocol::{ProtocolLimits, Request, ServerMsg, StatEntry};
use crate::server::ServerKnowledge;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit digest of the bytes a connection emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputDigest(u64);

impl OutputDigest {
    /// The digest of the empty byte string.
    pub fn new() -> OutputDigest {
        OutputDigest(FNV_OFFSET)
    }

    /// Folds more bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The digest as a fixed-width hex string.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl Default for OutputDigest {
    fn default() -> Self {
        OutputDigest::new()
    }
}

/// Monotonic per-connection event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnCounters {
    /// `GET` requests served (well-formed, known or unknown doc).
    pub requests: u64,
    /// Documents pushed speculatively.
    pub pushes: u64,
    /// Requests answered demand-only because speculation was shed.
    pub shed: u64,
    /// Protocol violations (each ends the connection).
    pub protocol_errors: u64,
    /// Bytes received from the peer.
    pub bytes_in: u64,
    /// Bytes generated for the peer.
    pub bytes_out: u64,
}

/// Where the connection is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Reading requests, writing responses.
    Streaming,
    /// No more input will be consumed; close once the output drains.
    Draining,
}

/// An incremental, bounded line assembler — [`read_bounded_line`]
/// restated as a push-style state machine so a readiness loop can feed
/// it arbitrary fragments.
///
/// [`read_bounded_line`]: crate::protocol::read_bounded_line
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    max: usize,
}

/// What one decoding step produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete request line (without the `\n`).
    Line(String),
    /// The peer violated a bound; the reason mirrors the typed
    /// [`CoreError::Protocol`](specweb_core::CoreError) text.
    Violation(String),
}

impl FrameDecoder {
    /// A decoder enforcing `max_bytes` per line.
    pub fn new(max_bytes: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            max: max_bytes,
        }
    }

    /// Feeds a fragment, appending completed frames to `frames`.
    /// Returns `false` if a violation was emitted (the caller should
    /// stop feeding this connection).
    pub fn feed(&mut self, mut bytes: &[u8], frames: &mut Vec<Frame>) -> bool {
        while !bytes.is_empty() {
            match bytes.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if self.buf.len() + i > self.max {
                        frames.push(Frame::Violation(format!("line exceeds {} bytes", self.max)));
                        return false;
                    }
                    self.buf.extend_from_slice(&bytes[..i]);
                    let line = std::mem::take(&mut self.buf);
                    match String::from_utf8(line) {
                        Ok(s) => frames.push(Frame::Line(s)),
                        Err(_) => {
                            frames.push(Frame::Violation("line is not valid UTF-8".into()));
                            return false;
                        }
                    }
                    bytes = &bytes[i + 1..];
                }
                None => {
                    if self.buf.len() + bytes.len() > self.max {
                        frames.push(Frame::Violation(format!("line exceeds {} bytes", self.max)));
                        return false;
                    }
                    self.buf.extend_from_slice(bytes);
                    return true;
                }
            }
        }
        true
    }

    /// Bytes buffered toward an incomplete line.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// The deterministic per-connection state machine.
#[derive(Debug)]
pub struct ConnCore {
    id: u64,
    limits: ProtocolLimits,
    decoder: FrameDecoder,
    out: Vec<u8>,
    phase: Phase,
    counters: ConnCounters,
    digest: OutputDigest,
    /// `STATS` requests parsed but not yet answered. The reply needs
    /// server-wide state the pure core cannot see, so the impure caller
    /// (reactor, or the replay driver re-driving a recorded snapshot)
    /// takes these and answers via [`ConnCore::push_stats_reply`].
    pending_stats: u64,
}

impl ConnCore {
    /// A fresh connection state machine.
    pub fn new(id: u64, limits: ProtocolLimits) -> ConnCore {
        ConnCore {
            id,
            limits,
            decoder: FrameDecoder::new(limits.max_line_bytes),
            out: Vec::new(),
            phase: Phase::Streaming,
            counters: ConnCounters::default(),
            digest: OutputDigest::new(),
            pending_stats: 0,
        }
    }

    /// The connection's id (assigned in accept order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Consumes one fragment of peer input under the given service
    /// level, generating response bytes into the output buffer.
    pub fn on_bytes(&mut self, bytes: &[u8], level: ServiceLevel, k: &ServerKnowledge) {
        self.counters.bytes_in += bytes.len() as u64;
        if self.phase == Phase::Draining {
            // A violated or quit connection consumes nothing further.
            return;
        }
        let mut frames = Vec::new();
        self.decoder.feed(bytes, &mut frames);
        for frame in frames {
            if self.phase == Phase::Draining {
                break;
            }
            match frame {
                Frame::Line(line) => self.handle_line(&line, level, k),
                Frame::Violation(reason) => self.protocol_error(&reason),
            }
        }
    }

    /// Signals end of input from the peer. A half-received line is a
    /// protocol violation, exactly as in the blocking reader.
    pub fn on_eof(&mut self) {
        if self.phase == Phase::Streaming && self.decoder.pending() > 0 {
            self.protocol_error("connection closed mid-line");
        }
        self.phase = Phase::Draining;
    }

    fn handle_line(&mut self, line: &str, level: ServiceLevel, k: &ServerKnowledge) {
        let req = match Request::parse(line, &self.limits) {
            Ok(req) => req,
            Err(e) => {
                self.protocol_error(&e.to_string());
                return;
            }
        };
        match req {
            Request::Quit => self.phase = Phase::Draining,
            Request::Stats => self.pending_stats = self.pending_stats.saturating_add(1),
            Request::Get { doc, have } => {
                self.counters.requests += 1;
                if doc.index() >= k.catalog.len() {
                    // Well-formed but unknown: report and keep the
                    // session alive.
                    self.emit(&ServerMsg::Err {
                        reason: format!("no such document {}", doc.raw()),
                    });
                    return;
                }
                self.emit(&ServerMsg::Doc {
                    doc,
                    size: k.catalog.size(doc).get(),
                });
                // Speculation is the first load to shed (§2.3): under
                // DemandOnly the response carries no pushes.
                if level == ServiceLevel::Full {
                    let decision = decide(
                        &k.policy,
                        &k.closure,
                        &k.direct,
                        doc,
                        &k.catalog,
                        k.max_size,
                        |j| have.contains(&j),
                    );
                    for (j, _) in decision.push {
                        if j == doc {
                            continue;
                        }
                        self.counters.pushes += 1;
                        self.emit(&ServerMsg::Push {
                            doc: j,
                            size: k.catalog.size(j).get(),
                        });
                    }
                } else {
                    self.counters.shed += 1;
                }
                self.emit(&ServerMsg::End);
            }
        }
    }

    fn protocol_error(&mut self, reason: &str) {
        self.counters.protocol_errors += 1;
        self.emit(&ServerMsg::Err {
            reason: reason.to_string(),
        });
        self.phase = Phase::Draining;
    }

    fn emit(&mut self, msg: &ServerMsg) {
        let line = format!("{msg}\n");
        self.digest.update(line.as_bytes());
        self.counters.bytes_out += line.len() as u64;
        self.out.extend_from_slice(line.as_bytes());
    }

    /// Takes (and clears) the count of `STATS` requests awaiting a
    /// reply. The caller answers each with one
    /// [`ConnCore::push_stats_reply`].
    pub fn take_stats_requests(&mut self) -> u64 {
        std::mem::take(&mut self.pending_stats)
    }

    /// Writes one stats reply — `STAT` lines then `END` — into the
    /// output buffer (and the digest). Pure: the snapshot values come
    /// from the caller, so a replay pushing the recorded entries
    /// regenerates identical bytes.
    pub fn push_stats_reply(&mut self, entries: &[StatEntry]) {
        for e in entries {
            self.emit(&ServerMsg::Stat(e.clone()));
        }
        self.emit(&ServerMsg::End);
    }

    /// Response bytes generated but not yet taken by the transport.
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// Marks the first `n` output bytes as written to the transport.
    pub fn consume_output(&mut self, n: usize) {
        self.out.drain(..n);
    }

    /// Bytes waiting in the output buffer — the reactor's backpressure
    /// signal: a connection over its cap is not read from.
    pub fn buffered(&self) -> usize {
        self.out.len()
    }

    /// Has the session ended (peer quit, EOF, or violation)?
    pub fn draining(&self) -> bool {
        self.phase == Phase::Draining
    }

    /// Ended *and* fully flushed: the transport can close now.
    pub fn done(&self) -> bool {
        self.draining() && self.out.is_empty()
    }

    /// A snapshot of the per-connection counters.
    pub fn counters(&self) -> ConnCounters {
        self.counters
    }

    /// The FNV-1a digest of every output byte so far, as hex.
    pub fn digest_hex(&self) -> String {
        self.digest.hex()
    }

    /// A one-line summary of the requested doc ids — used only for
    /// trace diagnostics, never for control flow.
    pub fn describe(&self) -> String {
        format!(
            "conn {}: {} req, {} push, {} shed, {} err",
            self.id,
            self.counters.requests,
            self.counters.pushes,
            self.counters.shed,
            self.counters.protocol_errors
        )
    }
}

/// A convenience used by tests and the replay driver: run one complete
/// input through a fresh core in a single fragment.
pub fn run_whole(
    id: u64,
    limits: ProtocolLimits,
    input: &[u8],
    level: ServiceLevel,
    k: &ServerKnowledge,
) -> ConnCore {
    let mut core = ConnCore::new(id, limits);
    core.on_bytes(input, level, k);
    core.on_eof();
    core
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_is_fragmentation_invariant() {
        let input = b"GET 1\nQUIT\n";
        let mut whole = Vec::new();
        FrameDecoder::new(64).feed(input, &mut whole);
        let mut bytewise = Vec::new();
        let mut d = FrameDecoder::new(64);
        for b in input {
            d.feed(std::slice::from_ref(b), &mut bytewise);
        }
        assert_eq!(whole, bytewise);
        assert_eq!(
            whole,
            vec![Frame::Line("GET 1".into()), Frame::Line("QUIT".into()),]
        );
    }

    #[test]
    fn decoder_enforces_the_line_cap() {
        let mut frames = Vec::new();
        let ok = FrameDecoder::new(8).feed(&[b'a'; 100], &mut frames);
        assert!(!ok);
        assert_eq!(
            frames,
            vec![Frame::Violation("line exceeds 8 bytes".into())]
        );

        // A line of exactly the cap is fine, cap+1 is not — the same
        // boundary as read_bounded_line.
        let mut frames = Vec::new();
        assert!(FrameDecoder::new(4).feed(b"abcd\n", &mut frames));
        assert_eq!(frames, vec![Frame::Line("abcd".into())]);
        let mut frames = Vec::new();
        assert!(!FrameDecoder::new(4).feed(b"abcde\n", &mut frames));
    }

    #[test]
    fn decoder_rejects_non_utf8() {
        let mut frames = Vec::new();
        let ok = FrameDecoder::new(64).feed(&[0xff, 0xfe, b'\n'], &mut frames);
        assert!(!ok);
        assert_eq!(
            frames,
            vec![Frame::Violation("line is not valid UTF-8".into())]
        );
    }

    #[test]
    fn digest_is_a_pure_function_of_the_bytes() {
        let mut a = OutputDigest::new();
        a.update(b"DOC 1 100\n");
        a.update(b"END\n");
        let mut b = OutputDigest::new();
        b.update(b"DOC 1 100\nEND\n");
        assert_eq!(a, b);
        assert_eq!(a.hex().len(), 16);
        let mut c = OutputDigest::new();
        c.update(b"DOC 1 101\nEND\n");
        assert_ne!(a, c);
    }
}
