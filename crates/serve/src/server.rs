//! The hardened speculative-service server.
//!
//! A multi-threaded TCP server speaking the [`crate::protocol`] wire
//! format, built around four robustness mechanisms the §4 prototype
//! lacked:
//!
//! * **bounded parsing** — request lines go through
//!   [`read_bounded_line`] and [`Request::parse`], so hostile peers hit
//!   typed [`CoreError::Protocol`] errors, never unbounded buffers;
//! * **deadlines** — every connection carries read and write timeouts;
//!   a stalled peer costs one handler thread for at most one timeout;
//! * **graceful degradation** — an [`OverloadController`] sheds
//!   speculation first (demand-only service, the §2.3 move) and only
//!   refuses connections at the hard cap, after waiting `admit_timeout`
//!   for a slot (accept-loop backpressure);
//! * **graceful shutdown** — a [`ShutdownToken`] asks the accept loop
//!   and every handler to finish the request in flight and exit;
//!   [`ServerHandle::shutdown`] joins them all.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use specweb_core::obs::{self, Channel};
use specweb_core::{Bytes, CoreError, Result};
use specweb_spec::deps::DepMatrix;
use specweb_spec::policy::{decide, Policy};
use specweb_trace::document::Catalog;

use crate::overload::{OverloadController, OverloadPolicy, ServiceLevel};
use crate::protocol::{read_bounded_line, ProtocolLimits, Request, ServerMsg};
use crate::shutdown::ShutdownToken;

/// Everything the server needs to answer and speculate, fixed at
/// startup — the output of the §3.2 off-line estimation step.
#[derive(Debug)]
pub struct ServerKnowledge {
    /// The document catalog (ids and sizes).
    pub catalog: Catalog,
    /// The direct dependency matrix `P`.
    pub direct: DepMatrix,
    /// Its transitive closure `P*`.
    pub closure: DepMatrix,
    /// The speculation policy.
    pub policy: Policy,
    /// `MaxSize`: documents larger than this are never pushed.
    pub max_size: Bytes,
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Wire-format caps.
    pub limits: ProtocolLimits,
    /// Degradation thresholds.
    pub overload: OverloadPolicy,
    /// Per-connection read deadline: a peer silent for longer is
    /// disconnected.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// How long the accept loop waits for a free slot before refusing a
    /// connection with `BUSY`.
    pub admit_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            limits: ProtocolLimits::default(),
            overload: OverloadPolicy::default(),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            admit_timeout: Duration::from_secs(1),
        }
    }
}

impl ServerConfig {
    /// Checks all knobs.
    pub fn validate(&self) -> Result<()> {
        self.limits.validate()?;
        self.overload.validate()?;
        if self.read_timeout.is_zero() || self.write_timeout.is_zero() {
            return Err(CoreError::invalid_config(
                "serve.timeouts",
                "read and write timeouts must be positive",
            ));
        }
        Ok(())
    }
}

/// Monotonic event counters, shared with the handler threads.
#[derive(Debug, Default)]
pub struct ServerStats {
    connections: AtomicU64,
    requests: AtomicU64,
    pushes: AtomicU64,
    shed_speculation: AtomicU64,
    refused_connections: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections admitted.
    pub connections: u64,
    /// `GET` requests served.
    pub requests: u64,
    /// Documents pushed speculatively.
    pub pushes: u64,
    /// Requests served demand-only because speculation was shed.
    pub shed_speculation: u64,
    /// Connections refused with `BUSY` at the hard cap.
    pub refused_connections: u64,
    /// Connections dropped for violating the protocol.
    pub protocol_errors: u64,
}

impl ServerStats {
    /// Bumps the local atomic and mirrors it into the process-wide
    /// observability registry. Server counters live on the wall-clock
    /// channel: they depend on real sockets and thread scheduling, so
    /// they are excluded from deterministic golden comparisons.
    fn bump(counter: &AtomicU64, name: &'static str) {
        counter.fetch_add(1, Ordering::Relaxed);
        obs::global()
            .metrics
            .counter_on(name, Channel::WallClock)
            .incr();
    }

    /// Reads all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            pushes: self.pushes.load(Ordering::Relaxed),
            shed_speculation: self.shed_speculation.load(Ordering::Relaxed),
            refused_connections: self.refused_connections.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// The server. Construct with [`SpecServer::spawn`].
#[derive(Debug)]
pub struct SpecServer;

impl SpecServer {
    /// Binds an ephemeral localhost port, starts the accept loop on a
    /// background thread, and returns a handle controlling it.
    pub fn spawn(knowledge: ServerKnowledge, config: ServerConfig) -> Result<ServerHandle> {
        config.validate()?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let token = ShutdownToken::new();
        let stats = Arc::new(ServerStats::default());
        let ctl = Arc::new(OverloadController::new(config.overload)?);

        let accept = AcceptLoop {
            listener,
            knowledge: Arc::new(knowledge),
            config,
            token: token.clone(),
            stats: Arc::clone(&stats),
            ctl: Arc::clone(&ctl),
        };
        let join = thread::Builder::new()
            .name("specweb-accept".into())
            .spawn(move || accept.run())
            .map_err(|e| CoreError::Io(e.to_string()))?;

        Ok(ServerHandle {
            addr,
            token,
            stats,
            ctl,
            join: Some(join),
        })
    }
}

/// Control handle for a running [`SpecServer`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    token: ShutdownToken,
    stats: Arc<ServerStats>,
    ctl: Arc<OverloadController>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A copy of the event counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The current service level.
    pub fn service_level(&self) -> ServiceLevel {
        self.ctl.level()
    }

    /// A token that can request shutdown from elsewhere.
    pub fn shutdown_token(&self) -> ShutdownToken {
        self.token.clone()
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// complete (or fail its deadline), and join all threads.
    pub fn shutdown(mut self) -> Result<()> {
        obs::global()
            .events
            .wall_event("serve", "shutdown", format!("addr={}", self.addr));
        self.token.trigger();
        // Wake the accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            join.join()
                .map_err(|_| CoreError::Io("server accept thread panicked".into()))?;
        }
        Ok(())
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort stop if the user never called shutdown(); the
        // accept thread is detached rather than joined here.
        self.token.trigger();
        let _ = TcpStream::connect(self.addr);
    }
}

struct AcceptLoop {
    listener: TcpListener,
    knowledge: Arc<ServerKnowledge>,
    config: ServerConfig,
    token: ShutdownToken,
    stats: Arc<ServerStats>,
    ctl: Arc<OverloadController>,
}

impl AcceptLoop {
    fn run(self) {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.token.is_triggered() {
                break;
            }
            let Ok(stream) = stream else { continue };
            handlers.retain(|h| !h.is_finished());

            // Admission with backpressure: wait up to admit_timeout for
            // a slot (connections queue in the OS backlog meanwhile),
            // then refuse with BUSY. Speculation shedding has already
            // happened at demand_only_at — refusal is the last rung.
            let deadline = std::time::Instant::now() + self.config.admit_timeout;
            let guard = loop {
                match self.ctl.try_admit() {
                    Some(g) => break Some(g),
                    None if self.token.is_triggered() => break None,
                    None if std::time::Instant::now() >= deadline => break None,
                    None => thread::sleep(Duration::from_millis(5)),
                }
            };
            let Some(guard) = guard else {
                ServerStats::bump(&self.stats.refused_connections, "serve.refused_connections");
                obs::global().events.wall_event(
                    "serve",
                    "refuse",
                    format!(
                        "{}/{} connections",
                        self.ctl.active(),
                        self.ctl.policy().max_connections
                    ),
                );
                let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                let mut s = stream;
                let busy = ServerMsg::Busy {
                    detail: format!(
                        "{}/{} connections",
                        self.ctl.active(),
                        self.ctl.policy().max_connections
                    ),
                };
                let _ = writeln!(s, "{busy}");
                continue;
            };

            ServerStats::bump(&self.stats.connections, "serve.connections");
            obs::global().events.wall_event(
                "serve",
                "accept",
                format!("active={}", self.ctl.active()),
            );
            let conn = Connection {
                knowledge: Arc::clone(&self.knowledge),
                config: self.config,
                token: self.token.clone(),
                stats: Arc::clone(&self.stats),
                ctl: Arc::clone(&self.ctl),
            };
            match thread::Builder::new()
                .name("specweb-conn".into())
                .spawn(move || {
                    let _guard = guard;
                    let _ = conn.handle(stream);
                }) {
                Ok(h) => handlers.push(h),
                Err(_) => continue, // stream and guard dropped: refused
            }
        }
        // Graceful drain: every handler finishes its in-flight request
        // and exits — blocked reads fail within one read_timeout.
        for h in handlers {
            let _ = h.join();
        }
    }
}

struct Connection {
    knowledge: Arc<ServerKnowledge>,
    config: ServerConfig,
    token: ShutdownToken,
    stats: Arc<ServerStats>,
    ctl: Arc<OverloadController>,
}

impl Connection {
    fn handle(&self, stream: TcpStream) -> Result<()> {
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut out = stream;
        let limits = self.config.limits;

        loop {
            if self.token.is_triggered() {
                return Ok(());
            }
            let line = match read_bounded_line(&mut reader, limits.max_line_bytes) {
                Ok(Some(line)) => line,
                Ok(None) => return Ok(()), // clean EOF
                Err(e @ CoreError::Protocol { .. }) => {
                    ServerStats::bump(&self.stats.protocol_errors, "serve.protocol_errors");
                    let msg = ServerMsg::Err {
                        reason: e.to_string(),
                    };
                    let _ = writeln!(out, "{msg}");
                    return Err(e);
                }
                // Read deadline or transport failure: drop the peer.
                Err(e) => return Err(e),
            };
            let req = match Request::parse(&line, &limits) {
                Ok(req) => req,
                Err(e) => {
                    ServerStats::bump(&self.stats.protocol_errors, "serve.protocol_errors");
                    let msg = ServerMsg::Err {
                        reason: e.to_string(),
                    };
                    let _ = writeln!(out, "{msg}");
                    return Err(e);
                }
            };
            match req {
                Request::Quit => return Ok(()),
                Request::Get { doc, have } => {
                    ServerStats::bump(&self.stats.requests, "serve.requests");
                    let k = &self.knowledge;
                    if doc.index() >= k.catalog.len() {
                        // Well-formed but unknown: report and keep the
                        // session alive.
                        let msg = ServerMsg::Err {
                            reason: format!("no such document {}", doc.raw()),
                        };
                        writeln!(out, "{msg}").map_err(CoreError::from)?;
                        continue;
                    }
                    let doc_msg = ServerMsg::Doc {
                        doc,
                        size: k.catalog.size(doc).get(),
                    };
                    writeln!(out, "{doc_msg}").map_err(CoreError::from)?;

                    // Speculation is the first load to shed (§2.3):
                    // under DemandOnly the response carries no pushes.
                    if self.ctl.level() == ServiceLevel::Full {
                        let decision = decide(
                            &k.policy,
                            &k.closure,
                            &k.direct,
                            doc,
                            &k.catalog,
                            k.max_size,
                            |j| have.contains(&j),
                        );
                        for (j, _) in decision.push {
                            if j == doc {
                                continue;
                            }
                            ServerStats::bump(&self.stats.pushes, "serve.pushes");
                            let push = ServerMsg::Push {
                                doc: j,
                                size: k.catalog.size(j).get(),
                            };
                            writeln!(out, "{push}").map_err(CoreError::from)?;
                        }
                    } else {
                        ServerStats::bump(&self.stats.shed_speculation, "serve.shed_total");
                        obs::global().events.wall_event(
                            "serve",
                            "shed",
                            format!("demand-only response for doc {}", doc.raw()),
                        );
                    }
                    writeln!(out, "{}", ServerMsg::End).map_err(CoreError::from)?;
                }
            }
        }
    }
}
