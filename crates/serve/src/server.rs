//! The hardened speculative-service server.
//!
//! An event-loop TCP server speaking the [`crate::protocol`] wire
//! format. The engine is a single reactor thread ([`crate::reactor`])
//! sweeping nonblocking sockets and feeding the pure per-connection
//! state machines of [`crate::conn`]; this file owns the public
//! surface: knowledge, config, stats, and the spawn/shutdown handle.
//!
//! Robustness mechanisms, grown from the §4 prototype:
//!
//! * **bounded parsing** — request lines go through the incremental
//!   [`FrameDecoder`](crate::conn::FrameDecoder), so hostile peers hit
//!   typed [`CoreError::Protocol`] errors, never unbounded buffers;
//! * **backpressure, not threads** — a slow or stalled client costs a
//!   few kilobytes of buffer, not a pinned handler thread; a connection
//!   whose output buffer is full simply stops being read;
//! * **deadlines** — a peer that makes no progress for `read_timeout`
//!   is disconnected by the reactor's sweep;
//! * **graceful degradation** — an [`OverloadController`] sheds
//!   speculation first (demand-only service, the §2.3 move) and only
//!   refuses connections at the hard cap, after holding them in an
//!   admission queue for `admit_timeout`;
//! * **graceful shutdown** — a [`ShutdownToken`] stops the reactor,
//!   which flushes buffered responses before closing;
//! * **record/replay** — [`SpecServer::spawn_recording`] captures the
//!   session into a deterministic [`SessionTrace`] that
//!   [`crate::session::replay`] re-drives byte-identically.
//!
//! The original thread-per-connection implementation survives as
//! [`crate::blocking`], kept as the baseline the chaos harness measures
//! the event loop against.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use specweb_core::obs::{self, Channel};
use specweb_core::stats::ServiceTimeDist;
use specweb_core::{Bytes, CoreError, Result};
use specweb_spec::deps::DepMatrix;
use specweb_spec::policy::Policy;
use specweb_trace::document::Catalog;

use crate::overload::{OverloadController, OverloadPolicy, ServiceLevel};
use crate::protocol::ProtocolLimits;
use crate::reactor::Reactor;
use crate::session::{KnowledgeSpec, SessionRecorder, SessionTrace};
use crate::shutdown::ShutdownToken;

/// Everything the server needs to answer and speculate, fixed at
/// startup — the output of the §3.2 off-line estimation step.
#[derive(Debug)]
pub struct ServerKnowledge {
    /// The document catalog (ids and sizes).
    pub catalog: Catalog,
    /// The direct dependency matrix `P`.
    pub direct: DepMatrix,
    /// Its transitive closure `P*`.
    pub closure: DepMatrix,
    /// The speculation policy.
    pub policy: Policy,
    /// `MaxSize`: documents larger than this are never pushed.
    pub max_size: Bytes,
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Wire-format caps.
    pub limits: ProtocolLimits,
    /// Degradation thresholds.
    pub overload: OverloadPolicy,
    /// Per-connection progress deadline: a peer that neither delivers
    /// nor accepts a byte for this long is disconnected.
    pub read_timeout: Duration,
    /// Bound on the shutdown flush of buffered responses.
    pub write_timeout: Duration,
    /// How long an unadmitted connection waits in the admission queue
    /// for a free slot before being refused with `BUSY`.
    pub admit_timeout: Duration,
    /// Per-connection output-buffer cap: a connection with more than
    /// this many unflushed response bytes exerts backpressure (it is
    /// not read from) instead of growing the buffer.
    pub out_buffer_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            limits: ProtocolLimits::default(),
            overload: OverloadPolicy::default(),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            admit_timeout: Duration::from_secs(1),
            out_buffer_cap: 64 * 1024,
        }
    }
}

impl ServerConfig {
    /// Checks all knobs.
    pub fn validate(&self) -> Result<()> {
        self.limits.validate()?;
        self.overload.validate()?;
        if self.read_timeout.is_zero() || self.write_timeout.is_zero() {
            return Err(CoreError::invalid_config(
                "serve.timeouts",
                "read and write timeouts must be positive",
            ));
        }
        if self.out_buffer_cap < self.limits.max_line_bytes {
            return Err(CoreError::invalid_config(
                "serve.out_buffer_cap",
                "must hold at least one maximum-length line",
            ));
        }
        Ok(())
    }
}

/// Monotonic event counters, shared with the reactor thread.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub(crate) connections: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) pushes: AtomicU64,
    pub(crate) shed_speculation: AtomicU64,
    pub(crate) refused_connections: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) stats_requests: AtomicU64,
    /// Admit→last-byte lifetime of every closed connection, in ms —
    /// wall-clock tail-latency the `STATS` verb reports live.
    pub(crate) conn_lifetime: Mutex<ServiceTimeDist>,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections admitted.
    pub connections: u64,
    /// `GET` requests served.
    pub requests: u64,
    /// Documents pushed speculatively.
    pub pushes: u64,
    /// Requests served demand-only because speculation was shed.
    pub shed_speculation: u64,
    /// Connections refused with `BUSY` at the hard cap.
    pub refused_connections: u64,
    /// Connections dropped for violating the protocol.
    pub protocol_errors: u64,
    /// `STATS` introspection requests answered.
    pub stats_requests: u64,
}

impl ServerStats {
    /// Bumps the local atomic and mirrors it into the process-wide
    /// observability registry. Server counters live on the wall-clock
    /// channel: they depend on real sockets and thread scheduling, so
    /// they are excluded from deterministic golden comparisons.
    pub(crate) fn bump(counter: &AtomicU64, name: &'static str) {
        Self::bump_by(counter, name, 1);
    }

    /// [`ServerStats::bump`], for a batch of `n` events.
    pub(crate) fn bump_by(counter: &AtomicU64, name: &'static str, n: u64) {
        if n == 0 {
            return;
        }
        counter.fetch_add(n, Ordering::Relaxed);
        obs::global()
            .metrics
            .counter_on(name, Channel::WallClock)
            .add(n);
    }

    /// Reads all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            pushes: self.pushes.load(Ordering::Relaxed),
            shed_speculation: self.shed_speculation.load(Ordering::Relaxed),
            refused_connections: self.refused_connections.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            stats_requests: self.stats_requests.load(Ordering::Relaxed),
        }
    }

    /// Records the admit→last-byte lifetime of a closed connection.
    pub(crate) fn record_lifetime(&self, ms: u64) {
        if let Ok(mut dist) = self.conn_lifetime.lock() {
            dist.record(ms);
        }
    }
}

/// The metric snapshot a `STATS` request is answered with: every
/// [`ServerStats`] counter, the live-connection and service-level
/// gauges, and the admit→last-byte lifetime distribution of closed
/// connections (count + p50/p99/max ms). Key order is fixed so replies
/// are stable for a given state.
pub(crate) fn stats_entries(
    stats: &ServerStats,
    ctl: &OverloadController,
    live_connections: u64,
) -> Vec<crate::protocol::StatEntry> {
    use crate::protocol::StatEntry;
    let snap = stats.snapshot();
    let mut entries = vec![
        StatEntry::new("connections", snap.connections),
        StatEntry::new("requests", snap.requests),
        StatEntry::new("pushes", snap.pushes),
        StatEntry::new("shed_speculation", snap.shed_speculation),
        StatEntry::new("refused_connections", snap.refused_connections),
        StatEntry::new("protocol_errors", snap.protocol_errors),
        StatEntry::new("stats_requests", snap.stats_requests),
        StatEntry::new("live_connections", live_connections),
        StatEntry::new(
            "service_level",
            u64::from(crate::session::level_code(ctl.level())),
        ),
    ];
    if let Ok(dist) = stats.conn_lifetime.lock() {
        if !dist.is_empty() {
            let q = dist.quantiles();
            entries.push(StatEntry::new("closed_connections", q.count));
            entries.push(StatEntry::new("conn_lifetime_p50_ms", q.p50_ms as u64));
            entries.push(StatEntry::new("conn_lifetime_p99_ms", q.p99_ms as u64));
            entries.push(StatEntry::new("conn_lifetime_max_ms", q.max_ms));
        }
    }
    entries
}

pub(crate) type TraceSlot = Arc<Mutex<Option<SessionTrace>>>;

/// The server. Construct with [`SpecServer::spawn`].
#[derive(Debug)]
pub struct SpecServer;

impl SpecServer {
    /// Binds an ephemeral localhost port, starts the reactor on a
    /// background thread, and returns a handle controlling it.
    pub fn spawn(knowledge: ServerKnowledge, config: ServerConfig) -> Result<ServerHandle> {
        Self::spawn_inner(knowledge, config, None)
    }

    /// Like [`SpecServer::spawn`], but records every event-loop input
    /// into a `specweb-session/v1` trace. `spec` must describe how
    /// `knowledge` was built (it is embedded in the trace so a replay
    /// can rebuild the same knowledge from the seed). Retrieve the
    /// trace with [`ServerHandle::shutdown_into_trace`].
    pub fn spawn_recording(
        knowledge: ServerKnowledge,
        config: ServerConfig,
        spec: KnowledgeSpec,
    ) -> Result<ServerHandle> {
        Self::spawn_inner(knowledge, config, Some(spec))
    }

    fn spawn_inner(
        knowledge: ServerKnowledge,
        config: ServerConfig,
        spec: Option<KnowledgeSpec>,
    ) -> Result<ServerHandle> {
        config.validate()?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let token = ShutdownToken::new();
        let stats = Arc::new(ServerStats::default());
        let ctl = Arc::new(OverloadController::new(config.overload)?);
        let trace: Option<TraceSlot> = spec.as_ref().map(|_| Arc::new(Mutex::new(None)));

        let reactor = Reactor {
            listener,
            knowledge: Arc::new(knowledge),
            config,
            token: token.clone(),
            stats: Arc::clone(&stats),
            ctl: Arc::clone(&ctl),
            recorder: spec.map(|s| SessionRecorder::new(s, config.limits)),
            trace_slot: trace.clone(),
        };
        let join = thread::Builder::new()
            .name("specweb-reactor".into())
            .spawn(move || reactor.run())
            .map_err(|e| CoreError::Io(e.to_string()))?;

        Ok(ServerHandle {
            addr,
            token,
            stats,
            ctl,
            join: Some(join),
            trace,
        })
    }
}

/// Control handle for a running [`SpecServer`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    token: ShutdownToken,
    stats: Arc<ServerStats>,
    ctl: Arc<OverloadController>,
    join: Option<JoinHandle<()>>,
    trace: Option<TraceSlot>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A copy of the event counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The current service level.
    pub fn service_level(&self) -> ServiceLevel {
        self.ctl.level()
    }

    /// A token that can request shutdown from elsewhere.
    pub fn shutdown_token(&self) -> ShutdownToken {
        self.token.clone()
    }

    /// Graceful shutdown: stop accepting, flush buffered responses
    /// (bounded by `write_timeout`), and join the reactor.
    pub fn shutdown(mut self) -> Result<()> {
        self.shutdown_inner()
    }

    /// Graceful shutdown of a recording server, returning the captured
    /// session trace. Errors if the server was not spawned with
    /// [`SpecServer::spawn_recording`].
    pub fn shutdown_into_trace(mut self) -> Result<SessionTrace> {
        let slot = self.trace.clone().ok_or_else(|| {
            CoreError::invalid_config("serve.record", "server was not spawned in recording mode")
        })?;
        self.shutdown_inner()?;
        let mut guard = slot
            .lock()
            .map_err(|_| CoreError::Io("trace slot poisoned".into()))?;
        guard
            .take()
            .ok_or_else(|| CoreError::Io("reactor exited without finishing the trace".into()))
    }

    fn shutdown_inner(&mut self) -> Result<()> {
        obs::global()
            .events
            .wall_event("serve", "shutdown", format!("addr={}", self.addr));
        self.token.trigger();
        // Nudge a possibly-sleeping reactor; it polls the token every
        // sweep, so this only shortens the last sleep.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            join.join()
                .map_err(|_| CoreError::Io("server reactor thread panicked".into()))?;
        }
        Ok(())
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort stop if the user never called shutdown(); the
        // reactor thread is detached rather than joined here.
        self.token.trigger();
        let _ = TcpStream::connect(self.addr);
    }
}
