//! The wire protocol, hardened against hostile peers.
//!
//! The same line-oriented exchange the §4 prototype sketched:
//!
//! ```text
//! client → server:  GET <doc-id> [HAVE <id>,<id>,…]\n   |  QUIT\n  |  STATS\n
//! server → client:  DOC <doc-id> <size>\n
//!                   PUSH <doc-id> <size>\n               (zero or more)
//!                   END\n
//! stats reply:      STAT <key> <value>\n                 (one per metric)
//!                   END\n
//! errors:           ERR <reason>\n                       (protocol violation)
//! overload:         BUSY <detail>\n                      (connection refused)
//! ```
//!
//! `STATS` is live introspection: the server answers with a snapshot of
//! its counters and gauges as `STAT` lines, then `END`, without ending
//! the session — so an operator (or the chaos harness) can watch a
//! server that is busy serving degraded peers.
//!
//! Unlike the prototype, every input is **bounded before it is parsed**:
//! a request line is read through [`read_bounded_line`], which refuses to
//! buffer more than [`ProtocolLimits::max_line_bytes`], and the `HAVE`
//! digest is capped at [`ProtocolLimits::max_have_ids`] entries. A peer
//! that exceeds either cap gets a typed [`CoreError::Protocol`] — never
//! an unbounded allocation.

use std::fmt;
use std::io::BufRead;

use serde::{Deserialize, Serialize};
use specweb_core::{CoreError, DocId, Result};

/// One `STAT <key> <value>` metric in a stats reply. Serializable so a
/// recorded session trace can replay the exact snapshot the live
/// reactor answered with (the values are wall-clock state, so they are
/// an *input* to the deterministic replay, like the service level).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatEntry {
    /// Metric name (one token, no whitespace).
    pub key: String,
    /// Metric value at snapshot time.
    pub value: u64,
}

impl StatEntry {
    /// A named metric sample.
    pub fn new(key: impl Into<String>, value: u64) -> StatEntry {
        StatEntry {
            key: key.into(),
            value,
        }
    }
}

/// Caps on what the parser will accept from the wire.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolLimits {
    /// Longest request or response line, in bytes (excluding the `\n`).
    pub max_line_bytes: usize,
    /// Most ids accepted in one `HAVE` digest.
    pub max_have_ids: usize,
}

impl Default for ProtocolLimits {
    fn default() -> Self {
        ProtocolLimits {
            max_line_bytes: 4096,
            max_have_ids: 256,
        }
    }
}

impl ProtocolLimits {
    /// Checks the caps are usable.
    pub fn validate(&self) -> Result<()> {
        if self.max_line_bytes < 16 {
            return Err(CoreError::invalid_config(
                "serve.max_line_bytes",
                "must be at least 16 bytes",
            ));
        }
        if self.max_have_ids == 0 {
            return Err(CoreError::invalid_config(
                "serve.max_have_ids",
                "must be positive",
            ));
        }
        Ok(())
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `GET <doc> [HAVE <id>,…]` — fetch a document, optionally
    /// piggybacking a cache digest (§3.4 cooperative clients).
    Get {
        /// The requested document.
        doc: DocId,
        /// Ids the client already holds (pushes for these are wasted).
        have: Vec<DocId>,
    },
    /// Orderly end of the session.
    Quit,
    /// Live metrics introspection: answered with `STAT` lines then
    /// `END`, keeping the session open.
    Stats,
}

impl Request {
    /// Parses one request line. Hostile input yields
    /// [`CoreError::Protocol`], never a panic or an unbounded `Vec`.
    pub fn parse(line: &str, limits: &ProtocolLimits) -> Result<Request> {
        let msg = line.trim();
        if msg == "QUIT" {
            return Ok(Request::Quit);
        }
        if msg == "STATS" {
            return Ok(Request::Stats);
        }
        let Some(rest) = msg.strip_prefix("GET ") else {
            return Err(CoreError::protocol(format!(
                "expected GET, STATS or QUIT, got {:?}",
                truncate(msg, 32)
            )));
        };
        let (id_part, have_part) = match rest.split_once(" HAVE ") {
            Some((a, b)) => (a, Some(b)),
            None => (rest, None),
        };
        let doc = parse_id(id_part, "document id")?;
        let mut have = Vec::new();
        if let Some(h) = have_part {
            for s in h.split(',') {
                if have.len() >= limits.max_have_ids {
                    return Err(CoreError::protocol(format!(
                        "HAVE digest exceeds {} ids",
                        limits.max_have_ids
                    )));
                }
                have.push(parse_id(s, "HAVE id")?);
            }
        }
        Ok(Request::Get { doc, have })
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Get { doc, have } => {
                write!(f, "GET {}", doc.raw())?;
                for (i, id) in have.iter().enumerate() {
                    if i == 0 {
                        write!(f, " HAVE {}", id.raw())?;
                    } else {
                        write!(f, ",{}", id.raw())?;
                    }
                }
                Ok(())
            }
            Request::Quit => write!(f, "QUIT"),
            Request::Stats => write!(f, "STATS"),
        }
    }
}

/// A parsed server response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerMsg {
    /// The requested document.
    Doc {
        /// Its id.
        doc: DocId,
        /// Its size in bytes.
        size: u64,
    },
    /// A speculative push riding on the response.
    Push {
        /// The pushed document.
        doc: DocId,
        /// Its size in bytes.
        size: u64,
    },
    /// One metric sample in a `STATS` reply.
    Stat(StatEntry),
    /// End of this response.
    End,
    /// The server refused the connection or request under overload;
    /// retry after a backoff.
    Busy {
        /// Human-readable overload context.
        detail: String,
    },
    /// The peer violated the protocol; the connection will close.
    Err {
        /// What went wrong.
        reason: String,
    },
}

impl ServerMsg {
    /// Parses one response line.
    pub fn parse(line: &str) -> Result<ServerMsg> {
        let msg = line.trim();
        if msg == "END" {
            return Ok(ServerMsg::End);
        }
        if let Some(rest) = msg.strip_prefix("DOC ") {
            let (doc, size) = parse_id_size(rest)?;
            return Ok(ServerMsg::Doc { doc, size });
        }
        if let Some(rest) = msg.strip_prefix("PUSH ") {
            let (doc, size) = parse_id_size(rest)?;
            return Ok(ServerMsg::Push { doc, size });
        }
        if let Some(rest) = msg.strip_prefix("STAT ") {
            let mut parts = rest.split_whitespace();
            let key = parts
                .next()
                .filter(|k| !k.is_empty())
                .ok_or_else(|| CoreError::protocol("STAT missing key"))?;
            let value = parts
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| CoreError::protocol("STAT missing or bad value"))?;
            if parts.next().is_some() {
                return Err(CoreError::protocol("STAT has trailing tokens"));
            }
            return Ok(ServerMsg::Stat(StatEntry::new(key, value)));
        }
        if let Some(rest) = msg.strip_prefix("BUSY") {
            return Ok(ServerMsg::Busy {
                detail: rest.trim().to_string(),
            });
        }
        if let Some(rest) = msg.strip_prefix("ERR") {
            return Ok(ServerMsg::Err {
                reason: rest.trim().to_string(),
            });
        }
        Err(CoreError::protocol(format!(
            "unknown server message {:?}",
            truncate(msg, 32)
        )))
    }
}

impl fmt::Display for ServerMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerMsg::Doc { doc, size } => write!(f, "DOC {} {size}", doc.raw()),
            ServerMsg::Push { doc, size } => write!(f, "PUSH {} {size}", doc.raw()),
            ServerMsg::Stat(e) => write!(f, "STAT {} {}", e.key, e.value),
            ServerMsg::End => write!(f, "END"),
            ServerMsg::Busy { detail } => write!(f, "BUSY {detail}"),
            ServerMsg::Err { reason } => write!(f, "ERR {reason}"),
        }
    }
}

/// Reads one `\n`-terminated line without ever buffering more than
/// `max_bytes`. Returns `Ok(None)` on a clean EOF before any bytes.
///
/// This is the hostile-input chokepoint: `BufRead::read_line` would
/// happily grow its `String` until memory runs out on a peer that never
/// sends a newline; this reader fails fast with a typed error instead.
pub fn read_bounded_line<R: BufRead>(reader: &mut R, max_bytes: usize) -> Result<Option<String>> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(CoreError::protocol("connection closed mid-line"));
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if buf.len() + i > max_bytes {
                    return Err(CoreError::protocol(format!(
                        "line exceeds {max_bytes} bytes"
                    )));
                }
                buf.extend_from_slice(&chunk[..i]);
                reader.consume(i + 1);
                let s = String::from_utf8(buf)
                    .map_err(|_| CoreError::protocol("line is not valid UTF-8"))?;
                return Ok(Some(s));
            }
            None => {
                let n = chunk.len();
                if buf.len() + n > max_bytes {
                    return Err(CoreError::protocol(format!(
                        "line exceeds {max_bytes} bytes"
                    )));
                }
                buf.extend_from_slice(chunk);
                reader.consume(n);
            }
        }
    }
}

fn parse_id(s: &str, what: &str) -> Result<DocId> {
    s.trim()
        .parse::<u32>()
        .map(DocId::new)
        .map_err(|_| CoreError::protocol(format!("bad {what} {:?}", truncate(s.trim(), 32))))
}

fn parse_id_size(rest: &str) -> Result<(DocId, u64)> {
    let mut parts = rest.split_whitespace();
    let doc = parse_id(parts.next().unwrap_or(""), "document id")?;
    let size = parts
        .next()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| CoreError::protocol("missing or bad size"))?;
    Ok((doc, size))
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn limits() -> ProtocolLimits {
        ProtocolLimits::default()
    }

    #[test]
    fn request_round_trips() {
        for req in [
            Request::Quit,
            Request::Stats,
            Request::Get {
                doc: DocId::new(7),
                have: vec![],
            },
            Request::Get {
                doc: DocId::new(7),
                have: vec![DocId::new(1), DocId::new(2)],
            },
        ] {
            let line = req.to_string();
            assert_eq!(Request::parse(&line, &limits()).unwrap(), req);
        }
    }

    #[test]
    fn server_msg_round_trips() {
        for msg in [
            ServerMsg::Doc {
                doc: DocId::new(3),
                size: 1024,
            },
            ServerMsg::Push {
                doc: DocId::new(4),
                size: 2,
            },
            ServerMsg::Stat(StatEntry::new("requests", 42)),
            ServerMsg::End,
            ServerMsg::Busy {
                detail: "64/64 connections".into(),
            },
            ServerMsg::Err {
                reason: "bad id".into(),
            },
        ] {
            let line = msg.to_string();
            assert_eq!(ServerMsg::parse(&line).unwrap(), msg);
        }
    }

    #[test]
    fn hostile_stat_lines_yield_typed_errors() {
        for bad in ["STAT ", "STAT requests", "STAT requests abc", "STAT k 1 2"] {
            let e = ServerMsg::parse(bad).unwrap_err();
            assert!(
                matches!(e, CoreError::Protocol { .. }),
                "{bad:?} gave {e:?}"
            );
        }
    }

    #[test]
    fn hostile_requests_yield_typed_errors() {
        let l = limits();
        for bad in [
            "",
            "FETCH 1",
            "GET ",
            "GET abc",
            "GET 1 HAVE x",
            "GET 4294967296",
            "GET 1 HAVE 1,,2",
        ] {
            let e = Request::parse(bad, &l).unwrap_err();
            assert!(
                matches!(e, CoreError::Protocol { .. }),
                "{bad:?} gave {e:?}"
            );
        }
    }

    #[test]
    fn have_digest_is_capped() {
        let l = ProtocolLimits {
            max_have_ids: 4,
            ..limits()
        };
        let ok = format!("GET 0 HAVE {}", ["1"; 4].join(","));
        assert!(Request::parse(&ok, &l).is_ok());
        let bad = format!("GET 0 HAVE {}", ["1"; 5].join(","));
        let e = Request::parse(&bad, &l).unwrap_err();
        assert!(e.to_string().contains("exceeds 4 ids"));
    }

    #[test]
    fn bounded_reader_enforces_the_line_cap() {
        let long = [b'a'; 100];
        let mut r = BufReader::new(&long[..]);
        let e = read_bounded_line(&mut r, 64).unwrap_err();
        assert!(matches!(e, CoreError::Protocol { .. }));
        assert!(e.to_string().contains("exceeds 64 bytes"));
    }

    #[test]
    fn bounded_reader_reads_lines_and_eof() {
        let data = b"GET 1\nQUIT\n".to_vec();
        let mut r = BufReader::new(&data[..]);
        assert_eq!(read_bounded_line(&mut r, 64).unwrap().unwrap(), "GET 1");
        assert_eq!(read_bounded_line(&mut r, 64).unwrap().unwrap(), "QUIT");
        assert!(read_bounded_line(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn mid_line_eof_is_a_protocol_error() {
        let data = b"GET 1".to_vec(); // no newline
        let mut r = BufReader::new(&data[..]);
        let e = read_bounded_line(&mut r, 64).unwrap_err();
        assert!(e.to_string().contains("mid-line"));
    }

    #[test]
    fn non_utf8_is_rejected() {
        let data = [0xff, 0xfe, b'\n'];
        let mut r = BufReader::new(&data[..]);
        assert!(read_bounded_line(&mut r, 64).is_err());
    }
}
