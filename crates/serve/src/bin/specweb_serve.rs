//! `specweb-serve`: record and replay live serve sessions.
//!
//! ```text
//! specweb-serve record --seed 1996 --out session.json
//! specweb-serve replay --trace session.json --jobs 4 --out outcome.json
//! ```
//!
//! `record` spawns the event-loop server in recording mode, drives a
//! scripted client workload against it (pipelined requests, a
//! fragmented line, one protocol violation), and writes the captured
//! `specweb-session/v1` trace. The trace embeds how the server's
//! knowledge was built, so `replay` can re-drive the exact byte
//! fragments through fresh state machines and diff the outcome — any
//! divergence exits nonzero. The outcome JSON is deterministic (no
//! wall-clock content), so CI can regenerate it from the committed
//! golden fixture and `git diff` it, the same staleness gate the lint
//! artifacts use.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use specweb_core::log;
use specweb_core::obs::{self, RunManifest};
use specweb_core::{CoreError, Result};
use specweb_serve::session::KnowledgeSpec;
use specweb_serve::{replay, ServerConfig, SessionTrace, SpecServer};

fn main() -> ExitCode {
    obs::set_default_level(obs::Level::Info);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    let opts = Opts::parse(&args[1..]);
    let result = match cmd.as_str() {
        "record" => cmd_record(&opts),
        "replay" => cmd_replay(&opts),
        "--help" | "-h" | "help" => {
            usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(CoreError::invalid_config(
            "command",
            format!("unknown command `{other}`"),
        )),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            log!(Error, "serve", "error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: specweb-serve <command> [options]\n\
         \n\
         commands:\n\
         \x20 record   run the event-loop server under a scripted workload\n\
         \x20          and capture a specweb-session/v1 trace\n\
         \x20 replay   re-drive a recorded trace deterministically and diff\n\
         \x20          the outcome (exit 1 on divergence)\n\
         \n\
         options:\n\
         \x20 --seed N          knowledge seed for record (default 1996)\n\
         \x20 --clients N       scripted clients for record (default 4)\n\
         \x20 --requests N      GETs per client for record (default 3)\n\
         \x20 --out FILE        where to write the trace (record) or the\n\
         \x20                   replay outcome JSON (replay)\n\
         \x20 --trace FILE      the session.json to replay\n\
         \x20 --jobs N          closure-build workers for replay (default 1)\n\
         \x20 --manifest DIR    also write manifest_session_replay.json with\n\
         \x20                   the session digest as a pinned artifact\n"
    );
}

/// Minimal flag parser (no clap in the offline dependency set).
struct Opts {
    kv: Vec<(String, String)>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut kv = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if let Some(v) = it.peek() {
                    if !v.starts_with("--") {
                        kv.push((name.to_string(), it.next().expect("peeked").clone()));
                    }
                }
            }
        }
        Opts { kv }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.kv
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn usize_or(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }
}

/// Reads everything until EOF, discarding it; the recording server has
/// already captured the interesting half (the request bytes).
fn drain(stream: &mut TcpStream) {
    let mut sink = [0u8; 4096];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

fn cmd_record(opts: &Opts) -> Result<ExitCode> {
    let seed = opts.usize_or("seed", 1996) as u64;
    let clients = opts.usize_or("clients", 4);
    let requests = opts.usize_or("requests", 3);
    let out = opts.get("out").unwrap_or("session.json").to_string();

    let spec = KnowledgeSpec::demo(seed);
    log!(Info, "serve", "building knowledge (seed {seed})…");
    let knowledge = spec.build(1)?;
    let handle = SpecServer::spawn_recording(knowledge, ServerConfig::default(), spec)?;
    let addr = handle.addr();
    log!(
        Info,
        "serve",
        "recording on {addr}: {clients} clients × {requests} requests"
    );

    // Scripted, sequential workload: pipelined GETs with one line
    // deliberately fragmented across writes, so the trace exercises the
    // incremental decoder, then a STATS probe on the first client (the
    // reply snapshot is recorded as a replay input), then a clean QUIT.
    for i in 0..clients {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_secs(5)))?;
        for k in 0..requests {
            let line = format!("GET {}\n", (i + k) % 8);
            if k == 0 {
                // Split mid-token: the decoder must reassemble.
                let bytes = line.as_bytes();
                s.write_all(&bytes[..2])?;
                s.flush()?;
                std::thread::sleep(Duration::from_millis(2));
                s.write_all(&bytes[2..])?;
            } else {
                s.write_all(line.as_bytes())?;
            }
        }
        if i == 0 {
            s.write_all(b"STATS\n")?;
        }
        s.write_all(b"QUIT\n")?;
        drain(&mut s);
    }
    // One hostile client: an unparseable verb must become a typed
    // protocol error in the trace, not a hang or a panic.
    {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_secs(5)))?;
        s.write_all(b"EVIL nonsense\n")?;
        drain(&mut s);
    }

    let trace = handle.shutdown_into_trace()?;
    std::fs::write(&out, trace.to_json())?;
    log!(
        Info,
        "serve",
        "trace → {out}: {} events, {} conns, session digest {}",
        trace.events.len(),
        trace.summary.conns.len(),
        trace.summary.digest
    );

    // Immediately prove the recording replays: a divergence here means
    // the server itself violated the determinism contract.
    let outcome = replay(&trace, 1)?;
    if !outcome.matches() {
        for d in &outcome.divergences {
            log!(Error, "serve", "divergence: {d}");
        }
        return Ok(ExitCode::FAILURE);
    }
    log!(Info, "serve", "self-check: trace replays byte-identically");
    Ok(ExitCode::SUCCESS)
}

fn cmd_replay(opts: &Opts) -> Result<ExitCode> {
    let Some(path) = opts.get("trace") else {
        return Err(CoreError::invalid_config(
            "replay.trace",
            "--trace FILE is required",
        ));
    };
    let jobs = opts.usize_or("jobs", 1);
    let text = std::fs::read_to_string(path)?;
    let trace = SessionTrace::from_json(&text)?;
    let outcome = replay(&trace, jobs)?;

    if let Some(out) = opts.get("out") {
        std::fs::write(out, outcome.to_json())?;
        log!(Info, "serve", "outcome → {out}");
    }
    if let Some(dir) = opts.get("manifest") {
        let manifest = RunManifest::new(
            "session_replay",
            trace.knowledge.seed,
            "full",
            obs::global().snapshot(),
        )
        .with_run_info(jobs, &obs::git_describe())
        .with_dropped_events(obs::global().events.dropped())
        .with_artifact("session", &outcome.summary.digest);
        let path = std::path::Path::new(dir).join(manifest.file_name());
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&manifest).map_err(|e| CoreError::Io(e.to_string()))?,
        )?;
        log!(Info, "serve", "manifest → {}", path.display());
    }

    if outcome.matches() {
        log!(
            Info,
            "serve",
            "replay OK: {} events, {} conns, session digest {}",
            outcome.events,
            outcome.summary.conns.len(),
            outcome.summary.digest
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for d in &outcome.divergences {
            log!(Error, "serve", "divergence: {d}");
        }
        Ok(ExitCode::FAILURE)
    }
}
