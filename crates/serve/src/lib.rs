//! # specweb-serve
//!
//! A hardened, multi-threaded TCP implementation of the speculative
//! service protocol — the paper's §4 ("work in progress involves the
//! development of prototypes to test and evaluate these protocols"),
//! grown from a demo into a fault-tolerant server:
//!
//! * [`protocol`] — the line-oriented wire format with bounded parsing:
//!   line-length and `HAVE`-digest caps turn hostile input into typed
//!   [`CoreError::Protocol`](specweb_core::CoreError) errors;
//! * [`overload`] — the graceful-degradation ladder: shed speculation
//!   first (demand-only service, the §2.3 move), refuse connections
//!   only at the hard cap;
//! * [`shutdown`] — cooperative shutdown tokens;
//! * [`server`] — the accept loop and per-connection handlers, with
//!   read/write deadlines and a graceful drain on shutdown;
//! * [`client`] — a retrying client: capped exponential backoff with
//!   seeded jitter on transient failures (`BUSY`, I/O), a speculative
//!   cache, and §3.4 cooperative `HAVE` digests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod overload;
pub mod protocol;
pub mod server;
pub mod shutdown;

pub use client::{ClientConfig, FetchResult, RetryConfig, SpecClient};
pub use overload::{OverloadController, OverloadPolicy, ServiceLevel};
pub use protocol::{ProtocolLimits, Request, ServerMsg};
pub use server::{ServerConfig, ServerHandle, ServerKnowledge, SpecServer, StatsSnapshot};
pub use shutdown::ShutdownToken;
