//! # specweb-serve
//!
//! A hardened, event-loop TCP implementation of the speculative
//! service protocol — the paper's §4 ("work in progress involves the
//! development of prototypes to test and evaluate these protocols"),
//! grown from a demo into a fault-tolerant server:
//!
//! * [`protocol`] — the line-oriented wire format with bounded parsing:
//!   line-length and `HAVE`-digest caps turn hostile input into typed
//!   [`CoreError::Protocol`](specweb_core::CoreError) errors;
//! * [`conn`] — the pure per-connection state machine: an incremental
//!   frame decoder plus the request→response logic, free of clocks,
//!   sockets and randomness so record/replay can re-drive it exactly;
//! * [`overload`] — the graceful-degradation ladder: shed speculation
//!   first (demand-only service, the §2.3 move), refuse connections
//!   only at the hard cap;
//! * [`shutdown`] — cooperative shutdown tokens;
//! * [`server`] — the public server surface over a single-threaded
//!   readiness reactor: nonblocking sockets, incremental reads and
//!   writes, and backpressure instead of thread-per-connection;
//! * [`blocking`] — the original thread-per-connection server, kept as
//!   the baseline the chaos harness measures the reactor against;
//! * [`session`] — deterministic record/replay: capture a serve
//!   session as a `specweb-session/v1` trace, re-drive it
//!   byte-identically, and diff the outcomes;
//! * [`chaos`] — a seeded slow-client/partial-write/stall harness
//!   driving hundreds of degraded connections from one thread;
//! * [`client`] — a retrying client: capped exponential backoff with
//!   seeded jitter on transient failures (`BUSY`, I/O), a speculative
//!   cache, and §3.4 cooperative `HAVE` digests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod chaos;
pub mod client;
pub mod conn;
pub mod overload;
pub mod protocol;
mod reactor;
pub mod server;
pub mod session;
pub mod shutdown;

pub use blocking::{BlockingHandle, BlockingServer};
pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use client::{ClientConfig, FetchResult, RetryConfig, SpecClient};
pub use conn::{ConnCore, FrameDecoder, OutputDigest};
pub use overload::{OverloadController, OverloadPolicy, ServiceLevel};
pub use protocol::{ProtocolLimits, Request, ServerMsg, StatEntry};
pub use server::{ServerConfig, ServerHandle, ServerKnowledge, SpecServer, StatsSnapshot};
pub use session::{replay, KnowledgeSpec, ReplayOutcome, SessionTrace, SESSION_SCHEMA};
pub use shutdown::ShutdownToken;
