//! The thread-per-connection baseline server.
//!
//! This is the original `SpecServer` implementation, preserved verbatim
//! in spirit after the event-loop rewrite ([`crate::reactor`]): a
//! blocking accept loop that spawns one OS thread per admitted
//! connection, each handler owning a blocking socket with read/write
//! deadlines.
//!
//! It exists for one reason: as the measured baseline. The chaos
//! harness ([`crate::chaos`]) drives both servers with the same seeded
//! slow-client schedule, and the acceptance bar for the event loop is
//! sustaining at least 10× this server's concurrent-connection count.
//! Here every slow or stalled peer pins a whole handler thread for up
//! to a read-timeout, so `max_connections` is effectively a thread
//! budget; the reactor holds the same peer for a few kilobytes of
//! buffer instead.
//!
//! Don't grow this module — new server behavior belongs in the reactor
//! path. It shares [`ServerKnowledge`], [`ServerConfig`] and
//! [`ServerStats`] with the event loop so the two remain comparable
//! knob-for-knob.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use specweb_core::obs;
use specweb_core::{CoreError, Result};
use specweb_spec::policy::decide;

use crate::overload::{OverloadController, ServiceLevel};
use crate::protocol::{read_bounded_line, Request, ServerMsg};
use crate::server::{stats_entries, ServerConfig, ServerKnowledge, ServerStats, StatsSnapshot};
use crate::shutdown::ShutdownToken;

/// The baseline server. Construct with [`BlockingServer::spawn`].
#[derive(Debug)]
pub struct BlockingServer;

impl BlockingServer {
    /// Binds an ephemeral localhost port, starts the blocking accept
    /// loop on a background thread, and returns a handle controlling
    /// it.
    pub fn spawn(knowledge: ServerKnowledge, config: ServerConfig) -> Result<BlockingHandle> {
        config.validate()?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let token = ShutdownToken::new();
        let stats = Arc::new(ServerStats::default());
        let ctl = Arc::new(OverloadController::new(config.overload)?);

        let accept = AcceptLoop {
            listener,
            knowledge: Arc::new(knowledge),
            config,
            token: token.clone(),
            stats: Arc::clone(&stats),
            ctl: Arc::clone(&ctl),
        };
        let join = thread::Builder::new()
            .name("specweb-accept".into())
            .spawn(move || accept.run())
            .map_err(|e| CoreError::Io(e.to_string()))?;

        Ok(BlockingHandle {
            addr,
            token,
            stats,
            ctl,
            join: Some(join),
        })
    }
}

/// Control handle for a running [`BlockingServer`].
#[derive(Debug)]
pub struct BlockingHandle {
    addr: SocketAddr,
    token: ShutdownToken,
    stats: Arc<ServerStats>,
    ctl: Arc<OverloadController>,
    join: Option<JoinHandle<()>>,
}

impl BlockingHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A copy of the event counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The current service level.
    pub fn service_level(&self) -> ServiceLevel {
        self.ctl.level()
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// complete (or fail its deadline), and join all threads.
    pub fn shutdown(mut self) -> Result<()> {
        obs::global().events.wall_event(
            "serve",
            "shutdown",
            format!("addr={} baseline", self.addr),
        );
        self.token.trigger();
        // Wake the accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            join.join()
                .map_err(|_| CoreError::Io("server accept thread panicked".into()))?;
        }
        Ok(())
    }
}

impl Drop for BlockingHandle {
    fn drop(&mut self) {
        // Best-effort stop if the user never called shutdown(); the
        // accept thread is detached rather than joined here.
        self.token.trigger();
        let _ = TcpStream::connect(self.addr);
    }
}

struct AcceptLoop {
    listener: TcpListener,
    knowledge: Arc<ServerKnowledge>,
    config: ServerConfig,
    token: ShutdownToken,
    stats: Arc<ServerStats>,
    ctl: Arc<OverloadController>,
}

impl AcceptLoop {
    fn run(self) {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.token.is_triggered() {
                break;
            }
            let Ok(stream) = stream else { continue };
            handlers.retain(|h| !h.is_finished());

            // Admission with backpressure: wait up to admit_timeout for
            // a slot (connections queue in the OS backlog meanwhile),
            // then refuse with BUSY. Speculation shedding has already
            // happened at demand_only_at — refusal is the last rung.
            let deadline = std::time::Instant::now() + self.config.admit_timeout;
            let guard = loop {
                match self.ctl.try_admit() {
                    Some(g) => break Some(g),
                    None if self.token.is_triggered() => break None,
                    None if std::time::Instant::now() >= deadline => break None,
                    None => thread::sleep(Duration::from_millis(5)),
                }
            };
            let Some(guard) = guard else {
                ServerStats::bump(&self.stats.refused_connections, "serve.refused_connections");
                obs::global().events.wall_event(
                    "serve",
                    "refuse",
                    format!(
                        "{}/{} connections",
                        self.ctl.active(),
                        self.ctl.policy().max_connections
                    ),
                );
                let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                let mut s = stream;
                let busy = ServerMsg::Busy {
                    detail: format!(
                        "{}/{} connections",
                        self.ctl.active(),
                        self.ctl.policy().max_connections
                    ),
                };
                let _ = writeln!(s, "{busy}");
                continue;
            };

            ServerStats::bump(&self.stats.connections, "serve.connections");
            obs::global().events.wall_event(
                "serve",
                "accept",
                format!("active={}", self.ctl.active()),
            );
            let conn = Connection {
                knowledge: Arc::clone(&self.knowledge),
                config: self.config,
                token: self.token.clone(),
                stats: Arc::clone(&self.stats),
                ctl: Arc::clone(&self.ctl),
            };
            match thread::Builder::new()
                .name("specweb-conn".into())
                .spawn(move || {
                    let _guard = guard;
                    let _ = conn.handle(stream);
                }) {
                Ok(h) => handlers.push(h),
                Err(_) => continue, // stream and guard dropped: refused
            }
        }
        // Graceful drain: every handler finishes its in-flight request
        // and exits — blocked reads fail within one read_timeout.
        for h in handlers {
            let _ = h.join();
        }
    }
}

struct Connection {
    knowledge: Arc<ServerKnowledge>,
    config: ServerConfig,
    token: ShutdownToken,
    stats: Arc<ServerStats>,
    ctl: Arc<OverloadController>,
}

impl Connection {
    fn handle(&self, stream: TcpStream) -> Result<()> {
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut out = stream;
        let limits = self.config.limits;

        loop {
            if self.token.is_triggered() {
                return Ok(());
            }
            let line = match read_bounded_line(&mut reader, limits.max_line_bytes) {
                Ok(Some(line)) => line,
                Ok(None) => return Ok(()), // clean EOF
                Err(e @ CoreError::Protocol { .. }) => {
                    ServerStats::bump(&self.stats.protocol_errors, "serve.protocol_errors");
                    let msg = ServerMsg::Err {
                        reason: e.to_string(),
                    };
                    let _ = writeln!(out, "{msg}");
                    return Err(e);
                }
                // Read deadline or transport failure: drop the peer.
                Err(e) => return Err(e),
            };
            let req = match Request::parse(&line, &limits) {
                Ok(req) => req,
                Err(e) => {
                    ServerStats::bump(&self.stats.protocol_errors, "serve.protocol_errors");
                    let msg = ServerMsg::Err {
                        reason: e.to_string(),
                    };
                    let _ = writeln!(out, "{msg}");
                    return Err(e);
                }
            };
            match req {
                Request::Quit => return Ok(()),
                Request::Stats => {
                    ServerStats::bump(&self.stats.stats_requests, "serve.stats_requests");
                    let live = self.ctl.active() as u64;
                    for e in stats_entries(&self.stats, &self.ctl, live) {
                        writeln!(out, "{}", ServerMsg::Stat(e)).map_err(CoreError::from)?;
                    }
                    writeln!(out, "{}", ServerMsg::End).map_err(CoreError::from)?;
                }
                Request::Get { doc, have } => {
                    ServerStats::bump(&self.stats.requests, "serve.requests");
                    let k = &self.knowledge;
                    if doc.index() >= k.catalog.len() {
                        // Well-formed but unknown: report and keep the
                        // session alive.
                        let msg = ServerMsg::Err {
                            reason: format!("no such document {}", doc.raw()),
                        };
                        writeln!(out, "{msg}").map_err(CoreError::from)?;
                        continue;
                    }
                    let doc_msg = ServerMsg::Doc {
                        doc,
                        size: k.catalog.size(doc).get(),
                    };
                    writeln!(out, "{doc_msg}").map_err(CoreError::from)?;

                    // Speculation is the first load to shed (§2.3):
                    // under DemandOnly the response carries no pushes.
                    if self.ctl.level() == ServiceLevel::Full {
                        let decision = decide(
                            &k.policy,
                            &k.closure,
                            &k.direct,
                            doc,
                            &k.catalog,
                            k.max_size,
                            |j| have.contains(&j),
                        );
                        for (j, _) in decision.push {
                            if j == doc {
                                continue;
                            }
                            ServerStats::bump(&self.stats.pushes, "serve.pushes");
                            let push = ServerMsg::Push {
                                doc: j,
                                size: k.catalog.size(j).get(),
                            };
                            writeln!(out, "{push}").map_err(CoreError::from)?;
                        }
                    } else {
                        ServerStats::bump(&self.stats.shed_speculation, "serve.shed_total");
                        obs::global().events.wall_event(
                            "serve",
                            "shed",
                            format!("demand-only response for doc {}", doc.raw()),
                        );
                    }
                    writeln!(out, "{}", ServerMsg::End).map_err(CoreError::from)?;
                }
            }
        }
    }
}
