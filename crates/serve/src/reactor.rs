//! The readiness-based event loop — one thread, every connection.
//!
//! A std-only reactor: the listener and every connection socket are
//! nonblocking, and a single thread sweeps them, treating `WouldBlock`
//! as "not ready". When a whole sweep makes no progress the thread
//! parks briefly, so an idle server costs near-zero CPU while a busy
//! one never sleeps.
//!
//! Per-connection work is delegated to the pure [`ConnCore`] state
//! machine; this file owns everything impure — sockets, wall-clock
//! deadlines, overload admission, stats mirroring, and (when
//! recording) the session trace. That split is deliberate: the reactor
//! reads `Instant::now` freely and is **not** a registered
//! deterministic root, while `ConnCore` and the replay driver are
//! (DESIGN §9) and must stay clock- and randomness-free.
//!
//! Compared to the thread-per-connection baseline ([`crate::blocking`])
//! the resource model flips: a slow, stalled or malicious peer used to
//! pin one OS thread for up to a read-timeout; here it holds a few
//! kilobytes of buffer and one file descriptor, and backpressure is
//! explicit — a connection whose output buffer is over
//! [`out_buffer_cap`](crate::server::ServerConfig::out_buffer_cap) is
//! simply not read from until it drains.

use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use specweb_core::obs;

use crate::conn::{ConnCore, ConnCounters};
use crate::overload::{ConnectionGuard, OverloadController};
use crate::server::{stats_entries, ServerConfig, ServerKnowledge, ServerStats, TraceSlot};
use crate::session::SessionRecorder;
use crate::shutdown::ShutdownToken;

/// How long the reactor parks when a full sweep made no progress.
const IDLE_PARK: Duration = Duration::from_micros(500);

/// Read-buffer size per sweep step.
const READ_CHUNK: usize = 16 * 1024;

pub(crate) struct Reactor {
    pub(crate) listener: TcpListener,
    pub(crate) knowledge: Arc<ServerKnowledge>,
    pub(crate) config: ServerConfig,
    pub(crate) token: ShutdownToken,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) ctl: Arc<OverloadController>,
    pub(crate) recorder: Option<SessionRecorder>,
    pub(crate) trace_slot: Option<TraceSlot>,
}

/// An admitted connection under reactor management.
struct Live {
    stream: TcpStream,
    core: ConnCore,
    _guard: ConnectionGuard,
    /// When the connection was admitted — start of its lifetime.
    admitted_at: Instant,
    /// Last instant a byte moved in either direction.
    last_progress: Instant,
    /// Counters already mirrored into [`ServerStats`].
    mirrored: ConnCounters,
    /// Peer reached end of input.
    eof: bool,
}

/// A connection waiting in the admission queue.
struct Pending {
    stream: TcpStream,
    deadline: Instant,
}

impl Reactor {
    pub(crate) fn run(self) {
        let Reactor {
            listener,
            knowledge,
            config,
            token,
            stats,
            ctl,
            mut recorder,
            trace_slot,
        } = self;

        let mut conns: BTreeMap<u64, Live> = BTreeMap::new();
        let mut pending: VecDeque<Pending> = VecDeque::new();
        let mut next_id: u64 = 0;
        let mut buf = vec![0u8; READ_CHUNK];

        while !token.is_triggered() {
            let mut progress = false;

            // Phase 1: drain the accept queue into the admission queue.
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        pending.push_back(Pending {
                            stream,
                            deadline: Instant::now() + config.admit_timeout,
                        });
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }

            // Phase 2: admission with backpressure — FIFO, waiting up
            // to admit_timeout for a slot, then refusing with BUSY
            // (the last rung of the degradation ladder).
            while let Some(front) = pending.front() {
                if let Some(guard) = ctl.try_admit() {
                    let Some(p) = pending.pop_front() else { break };
                    let id = next_id;
                    next_id += 1;
                    ServerStats::bump(&stats.connections, "serve.connections");
                    obs::global().events.wall_event(
                        "serve",
                        "accept",
                        format!("conn={id} active={}", ctl.active()),
                    );
                    if let Some(rec) = recorder.as_mut() {
                        rec.on_accept(id);
                    }
                    conns.insert(
                        id,
                        Live {
                            stream: p.stream,
                            core: ConnCore::new(id, config.limits),
                            _guard: guard,
                            admitted_at: Instant::now(),
                            last_progress: Instant::now(),
                            mirrored: ConnCounters::default(),
                            eof: false,
                        },
                    );
                    progress = true;
                } else if Instant::now() >= front.deadline {
                    let Some(mut p) = pending.pop_front() else {
                        break;
                    };
                    ServerStats::bump(&stats.refused_connections, "serve.refused_connections");
                    obs::global().events.wall_event(
                        "serve",
                        "refuse",
                        format!(
                            "{}/{} connections",
                            ctl.active(),
                            ctl.policy().max_connections
                        ),
                    );
                    if let Some(rec) = recorder.as_mut() {
                        rec.on_refused();
                    }
                    // Best effort; the peer may already be gone, and a
                    // nonblocking short write is as much as a refusal
                    // deserves.
                    let busy = format!(
                        "BUSY {}/{} connections\n",
                        ctl.active(),
                        ctl.policy().max_connections
                    );
                    let _ = p.stream.write(busy.as_bytes());
                    progress = true;
                } else {
                    break;
                }
            }

            // Phase 3: sweep every live connection — flush output,
            // then read input unless backpressured.
            let now = Instant::now();
            let live_count = conns.len() as u64;
            let mut closed: Vec<u64> = Vec::new();
            for (&id, live) in conns.iter_mut() {
                let mut dead = false;

                // Flush: partial writes are normal; WouldBlock means
                // the peer is slow and we stop pushing for this sweep.
                while live.core.buffered() > 0 {
                    match live.stream.write(live.core.output()) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(n) => {
                            live.core.consume_output(n);
                            live.last_progress = now;
                            progress = true;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }

                // Read, unless the session ended or the output buffer
                // exceeds the backpressure cap.
                if !dead
                    && !live.eof
                    && !live.core.draining()
                    && live.core.buffered() < config.out_buffer_cap
                {
                    match live.stream.read(&mut buf) {
                        Ok(0) => {
                            live.eof = true;
                            live.last_progress = now;
                            progress = true;
                            if let Some(rec) = recorder.as_mut() {
                                rec.on_eof(id);
                            }
                            live.core.on_eof();
                            mirror(&stats, live);
                        }
                        Ok(n) => {
                            live.last_progress = now;
                            progress = true;
                            let level = ctl.level();
                            if let Some(rec) = recorder.as_mut() {
                                rec.on_level(level);
                                rec.on_data(id, &buf[..n]);
                            }
                            live.core.on_bytes(&buf[..n], level, &knowledge);
                            // Answer any STATS requests in this
                            // fragment with a fresh snapshot. The
                            // entries are wall-clock state, so a
                            // recording captures them as replay inputs
                            // alongside the service level.
                            let pending = live.core.take_stats_requests();
                            if pending > 0 {
                                let entries = stats_entries(&stats, &ctl, live_count);
                                for _ in 0..pending {
                                    ServerStats::bump(
                                        &stats.stats_requests,
                                        "serve.stats_requests",
                                    );
                                    if let Some(rec) = recorder.as_mut() {
                                        rec.on_stats(id, &entries);
                                    }
                                    live.core.push_stats_reply(&entries);
                                }
                            }
                            mirror(&stats, live);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => dead = true,
                    }
                }

                let idle = now.duration_since(live.last_progress) > config.read_timeout;
                if dead || live.core.done() || (live.eof && live.core.buffered() == 0) || idle {
                    closed.push(id);
                }
            }
            for id in closed {
                if let Some(live) = conns.remove(&id) {
                    close_conn(&stats, &mut recorder, live);
                    progress = true;
                }
            }

            if !progress {
                thread::park_timeout(IDLE_PARK);
            }
        }

        // Shutdown drain: flush buffered responses, bounded by
        // write_timeout, then close everything and finish the trace.
        let deadline = Instant::now() + config.write_timeout;
        while Instant::now() < deadline && conns.values().any(|l| l.core.buffered() > 0) {
            let mut moved = false;
            for live in conns.values_mut() {
                while live.core.buffered() > 0 {
                    match live.stream.write(live.core.output()) {
                        Ok(n) if n > 0 => {
                            live.core.consume_output(n);
                            moved = true;
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        _ => break,
                    }
                }
            }
            if !moved {
                thread::park_timeout(Duration::from_millis(1));
            }
        }
        for (_, live) in std::mem::take(&mut conns) {
            close_conn(&stats, &mut recorder, live);
        }
        if let Some(rec) = recorder {
            let trace = rec.finish();
            if let Some(slot) = trace_slot {
                if let Ok(mut guard) = slot.lock() {
                    *guard = Some(trace);
                }
            }
        }
    }
}

/// Mirrors the delta since the last mirror into the shared stats (and
/// the wall-clock obs channel), emitting the shed trace event the
/// blocking server used to emit inline.
fn mirror(stats: &ServerStats, live: &mut Live) {
    let cur = live.core.counters();
    let prev = live.mirrored;
    ServerStats::bump_by(
        &stats.requests,
        "serve.requests",
        cur.requests - prev.requests,
    );
    ServerStats::bump_by(&stats.pushes, "serve.pushes", cur.pushes - prev.pushes);
    ServerStats::bump_by(
        &stats.shed_speculation,
        "serve.shed_total",
        cur.shed - prev.shed,
    );
    ServerStats::bump_by(
        &stats.protocol_errors,
        "serve.protocol_errors",
        cur.protocol_errors - prev.protocol_errors,
    );
    if cur.shed > prev.shed {
        obs::global().events.wall_event(
            "serve",
            "shed",
            format!("demand-only responses on conn {}", live.core.id()),
        );
    }
    live.mirrored = cur;
}

fn close_conn(stats: &ServerStats, recorder: &mut Option<SessionRecorder>, mut live: Live) {
    mirror(stats, &mut live);
    stats.record_lifetime(live.admitted_at.elapsed().as_millis() as u64);
    if let Some(rec) = recorder.as_mut() {
        rec.on_close(&live.core);
    }
    obs::global()
        .events
        .wall_event("serve", "conn.close", live.core.describe());
}
