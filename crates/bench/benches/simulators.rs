//! Criterion end-to-end benchmarks: trace generation and both
//! trace-driven simulators at quick scale (throughput in accesses/s).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use specweb_bench::{workloads, Scale};
use specweb_dissem::simulate::{DisseminationConfig, DisseminationSim};
use specweb_spec::estimator::MatrixStore;
use specweb_spec::simulate::{SpecConfig, SpecSim};
use specweb_trace::generator::TraceGenerator;

fn bench_trace_generation(c: &mut Criterion) {
    let topo = workloads::topology();
    let cfg = workloads::bu_config(Scale::Quick, 80);
    let expected = TraceGenerator::new(cfg.clone())
        .unwrap()
        .generate(&topo)
        .unwrap()
        .len();
    let mut g = c.benchmark_group("sim/trace_generation");
    g.throughput(Throughput::Elements(expected as u64));
    g.sample_size(20);
    g.bench_function("quick_bu", |b| {
        b.iter(|| {
            TraceGenerator::new(cfg.clone())
                .unwrap()
                .generate(std::hint::black_box(&topo))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_speculation_replay(c: &mut Criterion) {
    let topo = workloads::topology();
    let trace = workloads::bu_trace(Scale::Quick, 81).unwrap();
    let sim = SpecSim::new(&trace, &topo);
    let mut cfg = SpecConfig::baseline(0.3);
    cfg.estimator.history_days = workloads::history_days(Scale::Quick);
    cfg.warmup_days = workloads::warmup_days(Scale::Quick);
    let total_days = trace.duration.as_millis() / 86_400_000;
    let store = MatrixStore::precompute(&cfg.estimator, &trace, total_days).unwrap();

    let mut g = c.benchmark_group("sim/speculation");
    g.throughput(Throughput::Elements(2 * trace.len() as u64)); // two replays
    g.sample_size(10);
    g.bench_function("run_with_store", |b| {
        b.iter(|| {
            sim.run_with_store(std::hint::black_box(&cfg), Some(&store))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_matrix_store(c: &mut Criterion) {
    let trace = workloads::bu_trace(Scale::Quick, 82).unwrap();
    let cfg = SpecConfig::baseline(0.3);
    let mut est = cfg.estimator;
    est.history_days = workloads::history_days(Scale::Quick);
    let total_days = trace.duration.as_millis() / 86_400_000;
    let mut g = c.benchmark_group("sim/matrix_store");
    g.sample_size(10);
    g.bench_function("precompute", |b| {
        b.iter(|| MatrixStore::precompute(&est, std::hint::black_box(&trace), total_days).unwrap())
    });
    g.finish();
}

fn bench_dissemination_replay(c: &mut Criterion) {
    let topo = workloads::topology();
    let trace = workloads::bu_trace(Scale::Quick, 83).unwrap();
    let sim = DisseminationSim::new(&trace, &topo).unwrap();
    let cfg = DisseminationConfig::default();
    let mut g = c.benchmark_group("sim/dissemination");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);
    g.bench_function("run_default", |b| {
        b.iter(|| sim.run(std::hint::black_box(&cfg), &[]).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_speculation_replay,
    bench_matrix_store,
    bench_dissemination_replay
);
criterion_main!(benches);
