//! Criterion micro-benchmarks for the §3 estimation machinery:
//! P-matrix construction from access streams and the max-product
//! closure P*.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use specweb_bench::{workloads, Scale};
use specweb_core::time::Duration;
use specweb_spec::deps::DepMatrixBuilder;

fn bench_p_matrix(c: &mut Criterion) {
    let trace = workloads::bu_trace(Scale::Quick, 77).unwrap();
    let mut g = c.benchmark_group("deps/estimate");
    for frac in [4usize, 2, 1] {
        let n = trace.len() / frac;
        let slice = &trace.accesses[..n];
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), slice, |b, s| {
            b.iter(|| {
                DepMatrixBuilder::estimate(std::hint::black_box(s), Duration::from_secs(5), 2)
            })
        });
    }
    g.finish();
}

fn bench_closure(c: &mut Criterion) {
    let trace = workloads::bu_trace(Scale::Quick, 78).unwrap();
    let matrix = DepMatrixBuilder::estimate(&trace.accesses, Duration::from_secs(5), 2);
    let mut g = c.benchmark_group("deps/closure");
    g.throughput(Throughput::Elements(matrix.n_entries() as u64));
    for (floor, max_row) in [(0.05f64, 32usize), (0.01, 128)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("floor{floor}_row{max_row}")),
            &matrix,
            |b, m| b.iter(|| m.closure(floor, max_row).unwrap()),
        );
    }
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let trace = workloads::bu_trace(Scale::Quick, 79).unwrap();
    let matrix = DepMatrixBuilder::estimate(&trace.accesses, Duration::from_secs(5), 2);
    c.bench_function("deps/histogram", |b| {
        b.iter(|| std::hint::black_box(&matrix).probability_histogram(20))
    });
}

criterion_group!(benches, bench_p_matrix, bench_closure, bench_histogram);
criterion_main!(benches);
