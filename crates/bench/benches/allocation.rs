//! Criterion micro-benchmarks for the §2 allocation machinery:
//! the closed-form optimizer with its water-filling loop, the empirical
//! greedy allocator, and the hit-curve fitting that feeds both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specweb_core::dist::HitCurve;
use specweb_core::units::Bytes;
use specweb_dissem::alloc::{allocate_proportional, allocate_uniform, optimize, ServerModel};

fn synthetic_models(n: usize) -> Vec<ServerModel> {
    (0..n)
        .map(|i| ServerModel {
            lambda: 1e-7 * (1.0 + (i % 17) as f64),
            demand: 1e3 * (1.0 + (i % 29) as f64).powi(2),
        })
        .collect()
}

fn bench_optimize(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc/optimize");
    for n in [10usize, 100, 1_000] {
        let servers = synthetic_models(n);
        let b0 = Bytes::from_mib(64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &servers, |b, s| {
            b.iter(|| optimize(std::hint::black_box(s), b0).unwrap())
        });
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let servers = synthetic_models(100);
    let b0 = Bytes::from_mib(64);
    c.bench_function("alloc/uniform_100", |b| {
        b.iter(|| allocate_uniform(std::hint::black_box(&servers), b0).unwrap())
    });
    c.bench_function("alloc/proportional_100", |b| {
        b.iter(|| allocate_proportional(std::hint::black_box(&servers), b0).unwrap())
    });
}

fn bench_hit_curve(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc/hit_curve");
    for n in [1_000usize, 10_000] {
        let docs: Vec<(Bytes, u64)> = (0..n)
            .map(|i| (Bytes::new(500 + (i as u64 % 97) * 300), 1 + (n - i) as u64))
            .collect();
        g.bench_with_input(BenchmarkId::new("build", n), &docs, |b, d| {
            b.iter(|| HitCurve::from_documents(std::hint::black_box(d)).unwrap())
        });
        let curve = HitCurve::from_documents(&docs).unwrap();
        g.bench_with_input(BenchmarkId::new("fit_lambda", n), &curve, |b, cur| {
            b.iter(|| cur.fit_lambda(0.98).unwrap())
        });
    }
    g.finish();
}

fn bench_queueing(c: &mut Criterion) {
    use specweb_netsim::queueing::Mg1;
    let m = Mg1::httpd_1995();
    c.bench_function("alloc/mg1_response", |b| {
        b.iter(|| m.mean_response_secs(std::hint::black_box(17.3)))
    });
    c.bench_function("alloc/mg1_capacity", |b| {
        b.iter(|| m.capacity_for_response(std::hint::black_box(0.25)).unwrap())
    });
}

fn bench_zipf_fit(c: &mut Criterion) {
    use specweb_core::dist::{fit_zipf_theta, Zipf};
    use specweb_core::rng::SeedTree;
    let z = Zipf::new(1_000, 0.95).unwrap();
    let mut rng = SeedTree::new(5).child("bench").rng();
    let mut counts = vec![0u64; 1_000];
    for _ in 0..200_000 {
        counts[z.sample(&mut rng)] += 1;
    }
    c.bench_function("alloc/zipf_fit_1000", |b| {
        b.iter(|| fit_zipf_theta(std::hint::black_box(&counts)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_optimize,
    bench_baselines,
    bench_hit_curve,
    bench_queueing,
    bench_zipf_fit
);
criterion_main!(benches);
