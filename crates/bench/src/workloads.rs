//! Shared workload construction for the experiment harness.
//!
//! All experiments draw from the same two calibrated workloads so the
//! numbers are comparable across figures:
//!
//! * the **bu** workload — a `cs-www.bu.edu`-flavored single-server
//!   trace (the paper's: 205,925 accesses, 8,474 clients, >20k sessions
//!   over ~90 days);
//! * the **drift** workload — the same site with visible link churn,
//!   for the §3.4 staleness experiment.

use std::sync::atomic::{AtomicUsize, Ordering};

use specweb_core::obs::Obs;
use specweb_core::Result;
use specweb_netsim::topology::Topology;
use specweb_trace::generator::{Trace, TraceConfig, TraceGenerator};

use crate::Scale;

/// Process-wide population multiplier (the `--scale` flag): multiplies
/// `sessions_per_day` and the client count of every workload built by
/// this module. 1 = the paper's population.
static SCALE_FACTOR: AtomicUsize = AtomicUsize::new(1);

/// Sets the population multiplier for every workload built after this
/// call (clamped to ≥ 1). Called once at startup by the `figures`
/// binary; tests that set it must restore it.
pub fn set_scale_factor(factor: usize) {
    SCALE_FACTOR.store(factor.max(1), Ordering::Relaxed);
}

/// The current population multiplier.
pub fn scale_factor() -> usize {
    SCALE_FACTOR.load(Ordering::Relaxed).max(1)
}

/// The clientele tree used throughout: root (server) → 3 national
/// backbones → 9 regionals → 27 edge networks, 6 client leaves each.
/// Clients sit 4 hops from the server; interior nodes are candidate
/// proxies.
pub fn topology() -> Topology {
    Topology::balanced(3, 3, 6)
}

/// The `cs-www.bu.edu`-flavored workload at the requested scale.
pub fn bu_trace(scale: Scale, seed: u64) -> Result<Trace> {
    bu_trace_with(scale, seed, None)
}

/// Like [`bu_trace`], threading an observability bundle into the
/// generator so `trace.*` volume counters land in the caller's
/// per-experiment manifest (per-run accounting — nothing global).
pub fn bu_trace_with(scale: Scale, seed: u64, obs: Option<&Obs>) -> Result<Trace> {
    let _f = specweb_core::obs::profile::frame("workload.trace");
    let topo = topology();
    let mut generator = TraceGenerator::new(bu_config(scale, seed))?;
    if let Some(obs) = obs {
        generator = generator.with_obs(obs);
    }
    generator.generate(&topo)
}

/// The configuration behind [`bu_trace`], with the process-wide
/// [`scale_factor`] applied to the population.
pub fn bu_config(scale: Scale, seed: u64) -> TraceConfig {
    bu_config_with_factor(scale, seed, scale_factor())
}

/// [`bu_config`] at an explicit population multiplier.
fn bu_config_with_factor(scale: Scale, seed: u64, factor: usize) -> TraceConfig {
    let mut cfg = TraceConfig::bu_www(seed);
    match scale {
        Scale::Full => {
            // ≈ 90 days × 150 sessions × ~16 accesses ≈ 220k accesses.
        }
        Scale::Quick => {
            cfg.site.n_pages = 80;
            cfg.clients.n_clients = 150;
            cfg.duration_days = 16;
            cfg.sessions_per_day = 60;
        }
    }
    if factor > 1 {
        cfg.sessions_per_day = cfg.sessions_per_day.saturating_mul(factor);
        cfg.clients.n_clients = cfg.clients.n_clients.saturating_mul(factor);
    }
    cfg
}

/// The drifting workload for the staleness experiment: same site, but
/// pages re-target their links at a visible rate, over a longer span so
/// a 60-day update cycle can actually go stale.
pub fn drift_trace(scale: Scale, seed: u64) -> Result<Trace> {
    drift_trace_with(scale, seed, None)
}

/// Like [`drift_trace`], threading an observability bundle into the
/// generator (see [`bu_trace_with`]).
pub fn drift_trace_with(scale: Scale, seed: u64, obs: Option<&Obs>) -> Result<Trace> {
    let _f = specweb_core::obs::profile::frame("workload.trace");
    let topo = topology();
    let mut cfg = bu_config(scale, seed);
    match scale {
        Scale::Full => {
            cfg.duration_days = 120;
            cfg.link_churn_per_day = 0.025;
        }
        Scale::Quick => {
            cfg.duration_days = 24;
            cfg.link_churn_per_day = 0.05;
        }
    }
    let mut generator = TraceGenerator::new(cfg)?;
    if let Some(obs) = obs {
        generator = generator.with_obs(obs);
    }
    generator.generate(&topo)
}

/// The days a spec-sim should treat as warm-up at each scale (history
/// for the first estimation).
pub fn warmup_days(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 30,
        Scale::Quick => 6,
    }
}

/// The estimator history length at each scale (the paper's 60 days,
/// scaled down for quick runs).
pub fn history_days(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 60,
        Scale::Quick => 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workload_generates() {
        let t = bu_trace(Scale::Quick, 1).unwrap();
        assert!(t.len() > 1_000, "quick trace too small: {}", t.len());
        assert!(t.catalog.len() > 50);
    }

    #[test]
    fn drift_workload_generates() {
        let t = drift_trace(Scale::Quick, 1).unwrap();
        assert_eq!(t.duration.as_millis() / 86_400_000, 24);
    }

    #[test]
    fn scale_factor_multiplies_the_population() {
        // Explicit-factor path only: mutating the process-wide factor
        // here would race the other tests in this binary.
        let base = bu_config_with_factor(Scale::Quick, 1, 1);
        let x10 = bu_config_with_factor(Scale::Quick, 1, 10);
        assert_eq!(x10.sessions_per_day, base.sessions_per_day * 10);
        assert_eq!(x10.clients.n_clients, base.clients.n_clients * 10);
        // Everything else is untouched — same site, same span.
        assert_eq!(x10.duration_days, base.duration_days);
        assert_eq!(x10.site.n_pages, base.site.n_pages);
        // Factor 1 (and the default) is the identity.
        assert_eq!(
            base.sessions_per_day,
            bu_config(Scale::Quick, 1).sessions_per_day
        );
        assert_eq!(scale_factor(), 1);
    }

    #[test]
    fn topology_has_depth_four_leaves() {
        let topo = topology();
        for &l in topo.leaves() {
            assert_eq!(topo.depth(l), 4);
        }
        assert_eq!(topo.interior_nodes().len(), 3 + 9 + 27);
    }
}
