//! Shared workload construction for the experiment harness.
//!
//! All experiments draw from the same two calibrated workloads so the
//! numbers are comparable across figures:
//!
//! * the **bu** workload — a `cs-www.bu.edu`-flavored single-server
//!   trace (the paper's: 205,925 accesses, 8,474 clients, >20k sessions
//!   over ~90 days);
//! * the **drift** workload — the same site with visible link churn,
//!   for the §3.4 staleness experiment.

use specweb_core::Result;
use specweb_netsim::topology::Topology;
use specweb_trace::generator::{Trace, TraceConfig, TraceGenerator};

use crate::Scale;

/// The clientele tree used throughout: root (server) → 3 national
/// backbones → 9 regionals → 27 edge networks, 6 client leaves each.
/// Clients sit 4 hops from the server; interior nodes are candidate
/// proxies.
pub fn topology() -> Topology {
    Topology::balanced(3, 3, 6)
}

/// The `cs-www.bu.edu`-flavored workload at the requested scale.
pub fn bu_trace(scale: Scale, seed: u64) -> Result<Trace> {
    let topo = topology();
    let cfg = bu_config(scale, seed);
    TraceGenerator::new(cfg)?.generate(&topo)
}

/// The configuration behind [`bu_trace`].
pub fn bu_config(scale: Scale, seed: u64) -> TraceConfig {
    let mut cfg = TraceConfig::bu_www(seed);
    match scale {
        Scale::Full => {
            // ≈ 90 days × 150 sessions × ~16 accesses ≈ 220k accesses.
        }
        Scale::Quick => {
            cfg.site.n_pages = 80;
            cfg.clients.n_clients = 150;
            cfg.duration_days = 16;
            cfg.sessions_per_day = 60;
        }
    }
    cfg
}

/// The drifting workload for the staleness experiment: same site, but
/// pages re-target their links at a visible rate, over a longer span so
/// a 60-day update cycle can actually go stale.
pub fn drift_trace(scale: Scale, seed: u64) -> Result<Trace> {
    let topo = topology();
    let mut cfg = bu_config(scale, seed);
    match scale {
        Scale::Full => {
            cfg.duration_days = 120;
            cfg.link_churn_per_day = 0.025;
        }
        Scale::Quick => {
            cfg.duration_days = 24;
            cfg.link_churn_per_day = 0.05;
        }
    }
    TraceGenerator::new(cfg)?.generate(&topo)
}

/// The days a spec-sim should treat as warm-up at each scale (history
/// for the first estimation).
pub fn warmup_days(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 30,
        Scale::Quick => 6,
    }
}

/// The estimator history length at each scale (the paper's 60 days,
/// scaled down for quick runs).
pub fn history_days(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 60,
        Scale::Quick => 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workload_generates() {
        let t = bu_trace(Scale::Quick, 1).unwrap();
        assert!(t.len() > 1_000, "quick trace too small: {}", t.len());
        assert!(t.catalog.len() > 50);
    }

    #[test]
    fn drift_workload_generates() {
        let t = drift_trace(Scale::Quick, 1).unwrap();
        assert_eq!(t.duration.as_millis() / 86_400_000, 24);
    }

    #[test]
    fn topology_has_depth_four_leaves() {
        let topo = topology();
        for &l in topo.leaves() {
            assert_eq!(topo.depth(l), 4);
        }
        assert_eq!(topo.interior_nodes().len(), 3 + 9 + 27);
    }
}
