//! # specweb-bench
//!
//! The experiment harness: one module per figure/table of the paper's
//! evaluation, each regenerating its artifact from scratch (workload
//! generation → estimation → simulation → rendered table + JSON).
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p specweb-bench --bin figures -- all
//! ```
//!
//! or a single experiment (`fig1` … `fig6`, `tab1`, `exp-upd`,
//! `exp-size`, `exp-cache`, `exp-coop`, `exp-pref`, `exp-class`,
//! `exp-sizing`), or one of the ablation studies (`exp-closure`,
//! `exp-rank`, `exp-tailored`, `exp-shed`, `exp-hier`, `exp-alloc`,
//! `exp-aging`, `exp-digest`, `exp-queue`). Results land in `results/` as text and
//! JSON.
//!
//! Every experiment supports two scales: `Scale::Full` (trace sizes
//! comparable to the paper's 205,925-access log; minutes of runtime)
//! and `Scale::Quick` (seconds; used by the test suite and CI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod cli;
pub mod exps;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod perf;
pub mod plot;
pub mod workloads;

use std::fmt::Write as _;

use serde::Serialize;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-comparable trace sizes (minutes).
    Full,
    /// Small traces for tests and smoke runs (seconds).
    Quick,
}

/// A rendered experiment result: human-readable text plus a JSON blob.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `fig5`).
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The rendered text table.
    pub text: String,
    /// Machine-readable result.
    pub json: serde_json::Value,
    /// Observability snapshot taken at the end of the run; lands in
    /// `results/manifest_<id>.json`. Empty for experiments that have
    /// not been instrumented.
    pub metrics: specweb_core::obs::MetricSnapshot,
}

impl Report {
    /// Builds a report from a serializable result.
    pub fn new<T: Serialize>(
        id: &'static str,
        title: &'static str,
        text: String,
        value: &T,
    ) -> Report {
        Report {
            id,
            title,
            text,
            json: serde_json::to_value(value).expect("results are serializable"),
            metrics: specweb_core::obs::MetricSnapshot::default(),
        }
    }

    /// Attaches a metric snapshot (typically `obs.snapshot()` from the
    /// per-experiment [`specweb_core::obs::Obs`] the simulators wrote
    /// into).
    pub fn with_metrics(mut self, metrics: specweb_core::obs::MetricSnapshot) -> Report {
        self.metrics = metrics;
        self
    }

    /// Renders header + body.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let rule = "=".repeat(72);
        let _ = writeln!(out, "{rule}");
        let _ = writeln!(out, "{}: {}", self.id, self.title);
        let _ = writeln!(out, "{rule}");
        out.push_str(&self.text);
        if !self.text.ends_with('\n') {
            out.push('\n');
        }
        out
    }

    /// Writes `results/<id>.txt` and `results/<id>.json` under `dir`.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.txt", self.id)), self.render())?;
        std::fs::write(
            dir.join(format!("{}.json", self.id)),
            serde_json::to_string_pretty(&self.json).expect("valid json"),
        )?;
        Ok(())
    }
}

/// Formats a percentage with sign, e.g. `+5.0%` / `−30.2%`.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_serializes() {
        #[derive(Serialize)]
        struct R {
            x: u32,
        }
        let r = Report::new("t1", "test report", "body\n".into(), &R { x: 7 });
        let s = r.render();
        assert!(s.contains("t1: test report"));
        assert!(s.contains("body"));
        assert_eq!(r.json["x"], 7);
    }

    #[test]
    fn report_writes_files() {
        let dir = std::env::temp_dir().join("specweb-bench-test");
        let r = Report::new("t2", "files", "x\n".into(), &serde_json::json!({"a": 1}));
        r.write_to(&dir).unwrap();
        assert!(dir.join("t2.txt").exists());
        assert!(dir.join("t2.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(5.04), "+5.0%");
        assert_eq!(pct(-30.25), "-30.2%");
    }
}
