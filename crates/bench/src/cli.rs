//! Command-line parsing for the `figures` binary.
//!
//! Kept in the library (rather than the binary) so the flag grammar is
//! unit-testable: the experiment list, deduplication of repeated ids
//! and the `--jobs` contract all have regression tests here.

use std::path::PathBuf;

use crate::Scale;

/// Every experiment id the harness knows, in canonical run order.
pub const ALL: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "tab1",
    "exp-upd",
    "exp-size",
    "exp-cache",
    "exp-coop",
    "exp-pref",
    "exp-class",
    "exp-sizing",
    "exp-closure",
    "exp-rank",
    "exp-tailored",
    "exp-shed",
    "exp-hier",
    "exp-alloc",
    "exp-aging",
    "exp-digest",
    "exp-queue",
];

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// Experiment scale (`--quick` selects [`Scale::Quick`]).
    pub scale: Scale,
    /// Master seed (`--seed N`).
    pub seed: u64,
    /// Output directory (`--out DIR`).
    pub out_dir: PathBuf,
    /// Worker count (`--jobs N`); `None` means use the process default
    /// (`SPECWEB_JOBS` or the detected core count).
    pub jobs: Option<usize>,
    /// Population multiplier (`--scale {1,10,100}`): multiplies
    /// `sessions_per_day` and the client count of every workload.
    pub scale_factor: usize,
    /// Experiment ids to run, deduplicated, in request order.
    pub wanted: Vec<String>,
    /// Whether `--help` was requested.
    pub help: bool,
    /// Whether `--report` was requested: render a human-readable
    /// summary from the `manifest_*.json` files already in `--out`
    /// instead of running experiments.
    pub report: bool,
    /// Whether `--check-perf` was requested: after appending this
    /// run's timings to `perf_trajectory.json`, compare against the
    /// most recent comparable entry and exit nonzero on a regression
    /// beyond tolerance.
    pub check_perf: bool,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            scale: Scale::Full,
            seed: 1996,
            out_dir: PathBuf::from("results"),
            jobs: None,
            scale_factor: 1,
            wanted: Vec::new(),
            help: false,
            report: false,
            check_perf: false,
        }
    }
}

/// The usage string printed by `--help` and on bad invocations.
pub fn usage() -> String {
    format!(
        "usage: figures [--quick] [--seed N] [--jobs N] [--scale {{1|10|100}}] [--out DIR] [--check-perf] <ids…|all>\n       \
         figures --report [--out DIR]   (summarize manifest_*.json from a past run)\n\
         --check-perf: exit nonzero if this run regressed beyond tolerance\n\
         \x20             against the last comparable perf_trajectory.json entry\n\
         ids: {}",
        ALL.join(" ")
    )
}

/// Parses an argument list (without the program name).
///
/// Repeated experiment ids are deduplicated while preserving first-use
/// order, so `figures fig5 fig6` — whose two figures render from one
/// shared sweep — never runs the sweep twice, and neither does
/// `figures fig5 fig5`. `all` (or an empty list) expands to [`ALL`].
pub fn parse<I>(argv: I) -> Result<Args, String>
where
    I: IntoIterator<Item = String>,
{
    let mut out = Args::default();
    let mut argv = argv.into_iter();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => out.scale = Scale::Quick,
            "--seed" => {
                out.seed = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--jobs" => {
                let jobs: usize = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--jobs needs an integer")?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                out.jobs = Some(jobs);
            }
            "--scale" => {
                let factor: usize = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--scale needs an integer")?;
                if ![1, 10, 100].contains(&factor) {
                    return Err("--scale must be 1, 10 or 100".into());
                }
                out.scale_factor = factor;
            }
            "--out" => {
                out.out_dir = PathBuf::from(argv.next().ok_or("--out needs a path")?);
            }
            "--help" | "-h" => out.help = true,
            "--report" => out.report = true,
            "--check-perf" => out.check_perf = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()));
            }
            other => {
                if other != "all" && !ALL.contains(&other) {
                    return Err(format!("unknown experiment `{other}`\n{}", usage()));
                }
                out.wanted.push(other.to_string());
            }
        }
    }
    if out.wanted.is_empty() || out.wanted.iter().any(|w| w == "all") {
        out.wanted = ALL.iter().map(|s| s.to_string()).collect();
    } else {
        let mut seen = std::collections::BTreeSet::new();
        out.wanted.retain(|w| seen.insert(w.clone()));
    }
    Ok(Args { ..out })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Args, String> {
        parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn empty_argv_runs_everything_at_full_scale() {
        let a = p(&[]).unwrap();
        assert_eq!(a.scale, Scale::Full);
        assert_eq!(a.seed, 1996);
        assert_eq!(a.jobs, None);
        assert_eq!(a.wanted.len(), ALL.len());
        assert!(!a.help);
    }

    #[test]
    fn flags_parse() {
        let a = p(&[
            "--quick", "--seed", "7", "--jobs", "4", "--out", "/tmp/x", "fig3",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.seed, 7);
        assert_eq!(a.jobs, Some(4));
        assert_eq!(a.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(a.wanted, vec!["fig3"]);
    }

    #[test]
    fn repeated_ids_are_deduplicated_in_request_order() {
        // fig5 and fig6 share one sweep; a duplicated request must not
        // schedule the experiment (and hence the sweep) twice.
        let a = p(&["fig5", "fig6", "fig5", "fig6"]).unwrap();
        assert_eq!(a.wanted, vec!["fig5", "fig6"]);
        let b = p(&["fig6", "fig1", "fig6"]).unwrap();
        assert_eq!(b.wanted, vec!["fig6", "fig1"]);
    }

    #[test]
    fn all_expands_to_the_canonical_list_exactly_once() {
        let a = p(&["fig5", "all", "fig5"]).unwrap();
        assert_eq!(a.wanted.len(), ALL.len());
        let uniq: std::collections::HashSet<&String> = a.wanted.iter().collect();
        assert_eq!(uniq.len(), ALL.len());
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(p(&["fig99"]).is_err());
        assert!(p(&["--jobs", "0"]).is_err());
        assert!(p(&["--jobs", "four"]).is_err());
        assert!(p(&["--seed"]).is_err());
        assert!(p(&["--frobnicate"]).is_err());
    }

    #[test]
    fn scale_parses_and_rejects_off_grid_factors() {
        assert_eq!(p(&[]).unwrap().scale_factor, 1);
        assert_eq!(p(&["--scale", "1"]).unwrap().scale_factor, 1);
        assert_eq!(p(&["--scale", "10", "fig3"]).unwrap().scale_factor, 10);
        assert_eq!(p(&["--scale", "100"]).unwrap().scale_factor, 100);
        assert!(p(&["--scale", "2"]).is_err());
        assert!(p(&["--scale", "0"]).is_err());
        assert!(p(&["--scale", "ten"]).is_err());
        assert!(p(&["--scale"]).is_err());
    }

    #[test]
    fn help_short_circuits_validation_of_nothing_else() {
        let a = p(&["-h"]).unwrap();
        assert!(a.help);
    }

    #[test]
    fn check_perf_flag_parses() {
        assert!(p(&["--check-perf", "fig3"]).unwrap().check_perf);
        assert!(!p(&["fig3"]).unwrap().check_perf);
    }

    #[test]
    fn report_flag_parses_with_out_dir() {
        let a = p(&["--report", "--out", "/tmp/r"]).unwrap();
        assert!(a.report);
        assert_eq!(a.out_dir, PathBuf::from("/tmp/r"));
        assert!(!p(&["fig3"]).unwrap().report);
    }
}
