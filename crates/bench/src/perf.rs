//! Perf-trajectory tracking: a committed history of wall-clock runs.
//!
//! Every `figures` run appends one [`TrajectoryEntry`] — git describe,
//! jobs, scale, seed, total and per-experiment seconds — to
//! `perf_trajectory.json` in the output directory. The committed copy
//! under `results/` becomes a performance ledger: each PR's run rides
//! along, so a slowdown shows up as a diff long before anyone profiles.
//!
//! [`check_against`] is the regression gate behind `figures
//! --check-perf` (and the stdlib mirror `scripts/check_perf.py`): the
//! current run is compared against the most recent *comparable* prior
//! entry — same jobs, scale and scale factor — and a phase that got
//! slower than `prev × (1 + ratio) + floor` seconds is flagged. The
//! absolute floor keeps sub-second phases from tripping the gate on
//! scheduler noise; the ratio scales the allowance with the phase cost.
//!
//! Everything here is pure (no clocks, no file I/O beyond serde), so
//! the gate logic is unit-testable; the binary owns reading, appending
//! and exiting nonzero.

use serde::{Deserialize, Serialize};

/// Schema tag for `perf_trajectory.json`.
pub const PERF_SCHEMA: &str = "specweb-perf/v1";

/// One phase's (experiment's) wall clock within a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Experiment id (or a pseudo-phase like `fig5/fig6-shared-sweep`).
    pub id: String,
    /// Wall clock, seconds.
    pub seconds: f64,
}

/// One run's timing summary, appended per `figures` invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryEntry {
    /// `git describe` of the tree the run was built from.
    pub git: String,
    /// Worker count.
    pub jobs: u64,
    /// Scale name (`full`, `quick`, `quick-x10`, …).
    pub scale: String,
    /// Population multiplier.
    pub scale_factor: u64,
    /// Master seed.
    pub seed: u64,
    /// End-to-end wall clock, seconds.
    pub total_seconds: f64,
    /// Per-experiment wall clock, in run order.
    pub experiments: Vec<PhaseTiming>,
}

/// The whole committed ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Schema tag, always [`PERF_SCHEMA`].
    pub schema: String,
    /// Entries in append (run) order, oldest first.
    pub entries: Vec<TrajectoryEntry>,
}

impl Trajectory {
    /// An empty ledger.
    pub fn new() -> Trajectory {
        Trajectory {
            schema: PERF_SCHEMA.to_string(),
            entries: Vec::new(),
        }
    }

    /// Parses a ledger, checking the schema tag.
    pub fn from_json(text: &str) -> Result<Trajectory, String> {
        let t: Trajectory =
            serde_json::from_str(text).map_err(|e| format!("bad perf trajectory: {e}"))?;
        if t.schema != PERF_SCHEMA {
            return Err(format!(
                "bad perf trajectory schema: expected {PERF_SCHEMA}, got {}",
                t.schema
            ));
        }
        Ok(t)
    }

    /// Serializes the ledger as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }
}

impl Default for Trajectory {
    fn default() -> Self {
        Trajectory::new()
    }
}

/// How much slower a phase may get before it is a regression.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative allowance: 0.25 = 25% slower is still fine.
    pub ratio: f64,
    /// Absolute allowance in seconds, absorbing scheduler noise on
    /// cheap phases.
    pub floor_seconds: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            ratio: 0.25,
            floor_seconds: 0.5,
        }
    }
}

impl Tolerance {
    /// The slowest acceptable current value given a prior one.
    fn limit(&self, prev_seconds: f64) -> f64 {
        prev_seconds * (1.0 + self.ratio) + self.floor_seconds
    }
}

/// Two entries are comparable when they measured the same configuration
/// — same worker count, scale name and population multiplier. (The
/// seed is irrelevant to cost at fixed scale.)
pub fn comparable(a: &TrajectoryEntry, b: &TrajectoryEntry) -> bool {
    a.jobs == b.jobs && a.scale == b.scale && a.scale_factor == b.scale_factor
}

/// Compares `current` against `prev` phase by phase. Phases are matched
/// by id; ids present in only one run are skipped. `total_seconds` is
/// only compared when both runs covered the same phase set (otherwise
/// the totals measure different work). Returns one human-readable line
/// per regression; empty means the run is within tolerance.
pub fn check(prev: &TrajectoryEntry, current: &TrajectoryEntry, tol: &Tolerance) -> Vec<String> {
    let mut out = Vec::new();
    for cur in &current.experiments {
        let Some(old) = prev.experiments.iter().find(|p| p.id == cur.id) else {
            continue;
        };
        let limit = tol.limit(old.seconds);
        if cur.seconds > limit {
            out.push(format!(
                "{}: {:.2}s, was {:.2}s at {} (limit {:.2}s = prev × {:.2} + {:.2}s)",
                cur.id,
                cur.seconds,
                old.seconds,
                prev.git,
                limit,
                1.0 + tol.ratio,
                tol.floor_seconds,
            ));
        }
    }
    fn ids(e: &TrajectoryEntry) -> std::collections::BTreeSet<&str> {
        e.experiments.iter().map(|p| p.id.as_str()).collect()
    }
    let same_phases = ids(prev) == ids(current);
    if same_phases {
        let limit = tol.limit(prev.total_seconds);
        if current.total_seconds > limit {
            out.push(format!(
                "total: {:.2}s, was {:.2}s at {} (limit {:.2}s)",
                current.total_seconds, prev.total_seconds, prev.git, limit,
            ));
        }
    }
    out
}

/// Finds the most recent prior entry comparable to `current` and runs
/// [`check`] against it. With no comparable history there is nothing to
/// regress from: returns empty.
pub fn check_against(
    history: &[TrajectoryEntry],
    current: &TrajectoryEntry,
    tol: &Tolerance,
) -> Vec<String> {
    match history.iter().rev().find(|e| comparable(e, current)) {
        Some(prev) => check(prev, current, tol),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(jobs: u64, total: f64, phases: &[(&str, f64)]) -> TrajectoryEntry {
        TrajectoryEntry {
            git: "v0-test".into(),
            jobs,
            scale: "quick".into(),
            scale_factor: 1,
            seed: 5,
            total_seconds: total,
            experiments: phases
                .iter()
                .map(|(id, s)| PhaseTiming {
                    id: id.to_string(),
                    seconds: *s,
                })
                .collect(),
        }
    }

    #[test]
    fn empty_history_never_regresses() {
        let cur = entry(4, 100.0, &[("fig4", 100.0)]);
        assert!(check_against(&[], &cur, &Tolerance::default()).is_empty());
    }

    #[test]
    fn within_tolerance_is_quiet() {
        let prev = entry(4, 10.0, &[("fig4", 6.0), ("exp-closure", 4.0)]);
        // 20% slower + under the floor: both inside the default limit.
        let cur = entry(4, 12.0, &[("fig4", 7.2), ("exp-closure", 4.4)]);
        assert_eq!(
            check(&prev, &cur, &Tolerance::default()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn injected_synthetic_regression_is_flagged_by_phase() {
        let prev = entry(4, 10.0, &[("fig4", 6.0), ("exp-closure", 4.0)]);
        // fig4 doubled — far past 25% + 0.5s.
        let cur = entry(4, 16.0, &[("fig4", 12.0), ("exp-closure", 4.0)]);
        let regressions = check(&prev, &cur, &Tolerance::default());
        assert_eq!(regressions.len(), 2, "{regressions:?}"); // fig4 + total
        assert!(regressions[0].starts_with("fig4:"), "{regressions:?}");
        assert!(regressions[1].starts_with("total:"), "{regressions:?}");
    }

    #[test]
    fn the_floor_absorbs_noise_on_cheap_phases() {
        let prev = entry(4, 0.2, &[("exp-closure", 0.1)]);
        // 3× slower but only +0.2s: under the absolute floor.
        let cur = entry(4, 0.5, &[("exp-closure", 0.3)]);
        assert!(check(&prev, &cur, &Tolerance::default()).is_empty());
    }

    #[test]
    fn incomparable_entries_are_skipped() {
        // Prior runs at other job counts (or scales) say nothing about
        // this configuration.
        let history = [
            entry(1, 1.0, &[("fig4", 1.0)]),
            entry(8, 1.0, &[("fig4", 1.0)]),
        ];
        let cur = entry(4, 50.0, &[("fig4", 50.0)]);
        assert!(check_against(&history, &cur, &Tolerance::default()).is_empty());
    }

    #[test]
    fn latest_comparable_entry_wins() {
        let history = [
            entry(4, 50.0, &[("fig4", 50.0)]), // old and slow
            entry(4, 1.0, &[("fig4", 1.0)]),   // latest comparable
        ];
        let cur = entry(4, 40.0, &[("fig4", 40.0)]);
        let regressions = check_against(&history, &cur, &Tolerance::default());
        assert_eq!(regressions.len(), 2, "{regressions:?}"); // vs the 1.0s entry
    }

    #[test]
    fn totals_are_only_compared_over_the_same_phase_set() {
        let prev = entry(4, 3.0, &[("fig4", 3.0)]);
        // A much bigger run: more phases, bigger total — not a
        // regression of anything prev measured.
        let cur = entry(4, 30.0, &[("fig4", 3.0), ("exp-closure", 27.0)]);
        assert!(check(&prev, &cur, &Tolerance::default()).is_empty());
    }

    #[test]
    fn ledger_round_trips_and_rejects_bad_schemas() {
        let mut t = Trajectory::new();
        t.entries.push(entry(4, 10.0, &[("fig4", 10.0)]));
        let back = Trajectory::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);

        let mut bad = t.clone();
        bad.schema = "specweb-perf/v0".into();
        assert!(Trajectory::from_json(&bad.to_json()).is_err());
        assert!(Trajectory::from_json("not json").is_err());
    }
}
