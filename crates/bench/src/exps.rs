//! The remaining experiments: the §3.2 parameter table and the §3.4 /
//! §2.3 studies that the paper reports in prose rather than figures.

use serde::Serialize;
use specweb_core::rng::SeedTree;
use specweb_core::time::Duration;
use specweb_core::units::Bytes;
use specweb_core::Result;
use specweb_dissem::alloc;
use specweb_dissem::classify::Classifier;
use specweb_spec::cache::CacheModel;
use specweb_spec::estimator::MatrixStore;
use specweb_spec::policy::Policy;
use specweb_spec::prefetch::HintPolicy;
use specweb_spec::simulate::{SpecConfig, SpecSim};
use specweb_trace::document::PopularityClass;
use specweb_trace::updates::UpdateProcess;

use crate::{pct, Report, Scale};

// ---------------------------------------------------------------------
// TAB1 — the §3.2 baseline parameter table
// ---------------------------------------------------------------------

/// Renders the paper's baseline parameter table next to this
/// implementation's defaults (which must match).
pub fn tab1(_scale: Scale, _seed: u64) -> Result<Report> {
    let cfg = SpecConfig::baseline(0.5);
    #[derive(Serialize)]
    struct Tab1 {
        comm_cost: f64,
        serv_cost: f64,
        stride_timeout_s: u64,
        session_timeout: String,
        max_size: String,
        policy: String,
        history_length_days: u64,
        update_cycle_days: u64,
    }
    let row = Tab1 {
        comm_cost: cfg.cost.comm_cost,
        serv_cost: cfg.cost.serv_cost,
        stride_timeout_s: cfg.estimator.window.as_secs(),
        session_timeout: "∞".into(),
        max_size: "∞".into(),
        policy: "p*[i,j] ≥ T_p".into(),
        history_length_days: cfg.estimator.history_days,
        update_cycle_days: cfg.estimator.update_cycle_days,
    };
    let text = format!(
        "parameter        paper baseline      this implementation\n\
         CommCost         1 unit              {}\n\
         ServCost         10,000 unit         {}\n\
         StrideTimeout    5.0 secs            {} secs (T_w window)\n\
         SessionTimeout   ∞ secs              {:?} (CacheModel)\n\
         MaxSize          ∞ (no limit)        {}\n\
         Policy           p*[i,j] ≥ T_p       Policy::Threshold on P*\n\
         HistoryLength    60 days             {} days\n\
         UpdateCycle      1 day               {} day(s)\n",
        row.comm_cost,
        row.serv_cost,
        row.stride_timeout_s,
        cfg.cache,
        cfg.max_size,
        row.history_length_days,
        row.update_cycle_days,
    );
    Ok(Report::new(
        "tab1",
        "baseline model parameters (§3.2)",
        text,
        &row,
    ))
}

// ---------------------------------------------------------------------
// EXP-UPD — stability of P/P* under site drift (§3.4)
// ---------------------------------------------------------------------

/// One (cycle, history) schedule's measured metrics.
#[derive(Debug, Serialize)]
pub struct UpdRow {
    /// Re-estimation period (the paper's `D`).
    pub update_cycle_days: u64,
    /// History length (the paper's `D'`).
    pub history_days: u64,
    /// The three reductions, percent.
    pub load_reduction_pct: f64,
    /// Service-time reduction.
    pub time_reduction_pct: f64,
    /// Miss-rate reduction.
    pub miss_reduction_pct: f64,
    /// Mean absolute degradation vs the freshest schedule, percentage
    /// points over the three metrics.
    pub degradation_vs_best: f64,
    /// 99th-percentile service time of the speculative run, ms (exact
    /// order statistic over every measured access).
    pub p99_ms: f64,
    /// Baseline 99th percentile, ms — shared by every schedule.
    pub baseline_p99_ms: f64,
}

/// Runs the staleness experiment.
pub fn exp_upd(scale: Scale, seed: u64) -> Result<Report> {
    let obs = specweb_core::obs::Obs::new();
    let topo = crate::workloads::topology();
    let trace = crate::workloads::drift_trace_with(scale, seed, Some(&obs))?;
    let sim = SpecSim::new(&trace, &topo).with_obs(&obs);
    let total_days = trace.duration.as_millis() / 86_400_000;

    // (D, D') schedules, scaled: full = the paper's {1,7,60}×60 + 1×30.
    let schedules: &[(u64, u64)] = match scale {
        Scale::Full => &[(1, 60), (7, 60), (60, 60), (1, 30)],
        Scale::Quick => &[(1, 12), (4, 12), (12, 12), (1, 6)],
    };

    // All schedules must measure the same days, or the comparison is
    // meaningless: warm up past the *longest* history in the sweep.
    let max_history = schedules.iter().map(|&(_, h)| h).max().unwrap_or(1);
    let warmup = crate::workloads::warmup_days(scale).max(max_history.min(total_days / 2));

    // One baseline serves every schedule: the demand replay reads only
    // the cache model and warmup days, which the sweep holds fixed.
    let baseline = {
        let mut c = SpecConfig::baseline(0.3);
        c.warmup_days = warmup;
        sim.baseline_totals(&c)?
    };

    let mut rows: Vec<UpdRow> = Vec::new();
    for &(cycle, history) in schedules {
        let mut cfg = SpecConfig::baseline(0.3);
        cfg.estimator.history_days = history;
        cfg.estimator.update_cycle_days = cycle;
        cfg.warmup_days = warmup;
        let store = MatrixStore::precompute(&cfg.estimator, &trace, total_days)?;
        store.record_truncation(&obs);
        let out = sim.run_with_store_and_baseline(&cfg, Some(&store), Some(&baseline))?;
        rows.push(UpdRow {
            update_cycle_days: cycle,
            history_days: history,
            load_reduction_pct: out.ratios.server_load_reduction_pct(),
            time_reduction_pct: out.ratios.service_time_reduction_pct(),
            miss_reduction_pct: out.ratios.miss_rate_reduction_pct(),
            degradation_vs_best: 0.0,
            p99_ms: out.service_times.p99_ms,
            baseline_p99_ms: out.baseline_service_times.p99_ms,
        });
    }
    // Degradation vs the D = 1, long-history schedule (the first row).
    let best = (
        rows[0].load_reduction_pct,
        rows[0].time_reduction_pct,
        rows[0].miss_reduction_pct,
    );
    for r in rows.iter_mut() {
        r.degradation_vs_best = ((best.0 - r.load_reduction_pct)
            + (best.1 - r.time_reduction_pct)
            + (best.2 - r.miss_reduction_pct))
            / 3.0;
    }

    let mut text = String::new();
    text.push_str(&format!(
        "drifting site ({} accesses over {total_days} days); T_p = 0.3\n\n",
        trace.len()
    ));
    text.push_str("  D (cycle)  D' (history)    load     time     miss    degradation   p99 ms\n");
    for r in &rows {
        text.push_str(&format!(
            "{:>10}  {:>12}  {:>7}  {:>7}  {:>7}    {:>6.1} pts  {:>7.0}\n",
            r.update_cycle_days,
            r.history_days,
            pct(-r.load_reduction_pct),
            pct(-r.time_reduction_pct),
            pct(-r.miss_reduction_pct),
            r.degradation_vs_best,
            r.p99_ms
        ));
    }
    if let Some(r) = rows.first() {
        text.push_str(&format!(
            "\nbaseline service-time p99: {:.0} ms (every schedule shares the\n\
             same demand replay)\n",
            r.baseline_p99_ms
        ));
    }
    text.push_str(
        "\npaper: 60-day cycle ⇒ ≈7 pts absolute degradation, 7-day ⇒ ≈3 pts\n\
         (vs the 1-day cycle); shortening D' 60→30 recovers ≈5 pts.\n\
         shape check: degradation grows with the update cycle.\n",
    );

    Ok(Report::new(
        "exp-upd",
        "stability of the P and P* relations under site drift (§3.4)",
        text,
        &rows,
    )
    .with_metrics(obs.snapshot()))
}

// ---------------------------------------------------------------------
// EXP-SIZE — the MaxSize optimum per traffic budget (§3.4)
// ---------------------------------------------------------------------

/// One grid cell of the (MaxSize, T_p) sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SizeCell {
    /// MaxSize in bytes (`u64::MAX` = ∞).
    pub max_size: u64,
    /// The threshold.
    pub tp: f64,
    /// Traffic increase, percent.
    pub traffic_pct: f64,
    /// Load reduction, percent.
    pub load_reduction_pct: f64,
    /// Service-time reduction, percent.
    pub time_reduction_pct: f64,
}

/// The best cell per (budget, MaxSize).
#[derive(Debug, Serialize)]
pub struct SizeResult {
    /// All grid cells.
    pub grid: Vec<SizeCell>,
    /// For each traffic budget: `(budget_pct, best_max_size,
    /// best_load_reduction)`.
    pub optima: Vec<(f64, u64, f64)>,
}

/// Runs the MaxSize experiment.
pub fn exp_size(scale: Scale, seed: u64) -> Result<Report> {
    let obs = specweb_core::obs::Obs::new();
    let topo = crate::workloads::topology();
    let trace = crate::workloads::bu_trace_with(scale, seed, Some(&obs))?;
    let sim = SpecSim::new(&trace, &topo).with_obs(&obs);
    let total_days = trace.duration.as_millis() / 86_400_000;

    let mut cfg = SpecConfig::baseline(0.5);
    cfg.estimator.history_days = crate::workloads::history_days(scale);
    cfg.warmup_days = crate::workloads::warmup_days(scale);
    let store = MatrixStore::precompute(&cfg.estimator, &trace, total_days)?;
    store.record_truncation(&obs);

    let sizes: &[u64] = match scale {
        Scale::Full => &[
            4 << 10,
            8 << 10,
            15 << 10,
            29 << 10,
            64 << 10,
            256 << 10,
            u64::MAX,
        ],
        Scale::Quick => &[4 << 10, 15 << 10, 64 << 10, u64::MAX],
    };
    let tps: &[f64] = match scale {
        // Fine grid: the MaxSize tradeoff is about how much *lower* a
        // threshold the cap lets you afford within a traffic budget.
        Scale::Full => &[
            0.9, 0.7, 0.5, 0.4, 0.3, 0.25, 0.2, 0.15, 0.12, 0.1, 0.08, 0.05,
        ],
        Scale::Quick => &[0.9, 0.7, 0.3, 0.1],
    };

    // One baseline serves the whole grid: neither MaxSize nor T_p is
    // read by the demand replay.
    let baseline = sim.baseline_totals(&cfg)?;

    let mut grid = Vec::new();
    for &ms in sizes {
        for &tp in tps {
            cfg.policy = Policy::Threshold { tp };
            cfg.max_size = Bytes::new(ms);
            let out = sim.run_with_store_and_baseline(&cfg, Some(&store), Some(&baseline))?;
            grid.push(SizeCell {
                max_size: ms,
                tp,
                traffic_pct: out.ratios.traffic_increase_pct(),
                load_reduction_pct: out.ratios.server_load_reduction_pct(),
                time_reduction_pct: out.ratios.service_time_reduction_pct(),
            });
        }
    }

    // For each traffic budget, the best load reduction achievable per
    // MaxSize (choosing T_p freely within the budget), and the overall
    // optimal MaxSize.
    let budgets = [3.0f64, 10.0];
    let mut optima = Vec::new();
    let mut text = String::new();
    text.push_str(&format!(
        "(MaxSize × T_p) grid on {} accesses; per-budget optimum\n\n",
        trace.len()
    ));
    for &budget in &budgets {
        text.push_str(&format!("traffic budget ≤ +{budget:.0}%:\n"));
        text.push_str("  MaxSize     best load reduction (T_p chosen within budget)\n");
        let mut best: Option<(u64, f64)> = None;
        for &ms in sizes {
            let cell = grid
                .iter()
                .filter(|c| c.max_size == ms && c.traffic_pct <= budget)
                .max_by(|a, b| a.load_reduction_pct.total_cmp(&b.load_reduction_pct));
            let label = if ms == u64::MAX {
                "      ∞".to_string()
            } else {
                format!("{:>6}K", ms >> 10)
            };
            match cell {
                Some(c) => {
                    text.push_str(&format!(
                        "  {label}    −{:.1}% (T_p = {:.2}, traffic {})\n",
                        c.load_reduction_pct,
                        c.tp,
                        pct(c.traffic_pct)
                    ));
                    if best.is_none_or(|(_, b)| c.load_reduction_pct > b) {
                        best = Some((ms, c.load_reduction_pct));
                    }
                }
                None => {
                    text.push_str(&format!("  {label}    (budget unreachable)\n"));
                }
            }
        }
        if let Some((ms, red)) = best {
            optima.push((budget, ms, red));
            let label = if ms == u64::MAX {
                "∞".to_string()
            } else {
                format!("{}K", ms >> 10)
            };
            text.push_str(&format!("  → optimal MaxSize ≈ {label}\n\n"));
        }
    }
    text.push_str(
        "paper: ≈15 KB optimal at a 3% budget, ≈29 KB at 10% — the optimum\n\
         MaxSize grows with the tolerable traffic.\n",
    );

    let result = SizeResult { grid, optima };
    Ok(Report::new(
        "exp-size",
        "effect of document size: optimal MaxSize per traffic budget (§3.4)",
        text,
        &result,
    )
    .with_metrics(obs.snapshot()))
}

// ---------------------------------------------------------------------
// EXP-CACHE — client caching spectrum (§3.4)
// ---------------------------------------------------------------------

/// One cache model's outcome at a fixed threshold.
#[derive(Debug, Serialize)]
pub struct CacheRow {
    /// Human label.
    pub cache: String,
    /// The threshold used.
    pub tp: f64,
    /// The four metrics (percent changes).
    pub traffic_pct: f64,
    /// Load reduction.
    pub load_reduction_pct: f64,
    /// Service-time reduction.
    pub time_reduction_pct: f64,
    /// Miss-rate reduction.
    pub miss_reduction_pct: f64,
}

/// Runs the client-caching experiment.
pub fn exp_cache(scale: Scale, seed: u64) -> Result<Report> {
    let obs = specweb_core::obs::Obs::new();
    let topo = crate::workloads::topology();
    let trace = crate::workloads::bu_trace_with(scale, seed, Some(&obs))?;
    let sim = SpecSim::new(&trace, &topo).with_obs(&obs);
    let total_days = trace.duration.as_millis() / 86_400_000;

    let mut cfg = SpecConfig::baseline(0.3);
    cfg.estimator.history_days = crate::workloads::history_days(scale);
    cfg.warmup_days = crate::workloads::warmup_days(scale);
    let store = MatrixStore::precompute(&cfg.estimator, &trace, total_days)?;
    store.record_truncation(&obs);

    let models: Vec<(String, CacheModel)> = vec![
        (
            "session 10 min (no long-term cache)".into(),
            CacheModel::Session {
                timeout: Duration::from_secs(600),
            },
        ),
        (
            "session 60 min".into(),
            CacheModel::Session {
                timeout: Duration::from_secs(3_600),
            },
        ),
        (
            "LRU 1 MiB".into(),
            CacheModel::Lru {
                capacity: Bytes::from_mib(1),
            },
        ),
        ("infinite (baseline)".into(), CacheModel::Infinite),
    ];

    let mut rows = Vec::new();
    for (label, model) in &models {
        cfg.cache = *model;
        let out = sim.run_with_store(&cfg, Some(&store))?;
        rows.push(CacheRow {
            cache: label.clone(),
            tp: 0.3,
            traffic_pct: out.ratios.traffic_increase_pct(),
            load_reduction_pct: out.ratios.server_load_reduction_pct(),
            time_reduction_pct: out.ratios.service_time_reduction_pct(),
            miss_reduction_pct: out.ratios.miss_rate_reduction_pct(),
        });
    }

    let mut text = String::new();
    text.push_str("speculation at T_p = 0.3 under different client caches\n\n");
    text.push_str("cache                                 traffic     load     time     miss\n");
    for r in &rows {
        text.push_str(&format!(
            "{:<36} {:>8}  {:>7}  {:>7}  {:>7}\n",
            r.cache,
            pct(r.traffic_pct),
            pct(-r.load_reduction_pct),
            pct(-r.time_reduction_pct),
            pct(-r.miss_reduction_pct)
        ));
    }
    text.push_str(
        "\npaper: gains persist even without a long-term cache; with an\n\
         infinite cache the *relative* gains shrink slightly (35/27/23 →\n\
         32/24/19 at +10% traffic) because the baseline is already good.\n",
    );

    Ok(
        Report::new("exp-cache", "effect of client caching (§3.4)", text, &rows)
            .with_metrics(obs.snapshot()),
    )
}

// ---------------------------------------------------------------------
// EXP-COOP — cooperative clients (§3.4)
// ---------------------------------------------------------------------

/// One row of the cooperation comparison.
#[derive(Debug, Serialize)]
pub struct CoopRow {
    /// The threshold.
    pub tp: f64,
    /// Plain traffic increase.
    pub plain_traffic_pct: f64,
    /// Cooperative traffic increase.
    pub coop_traffic_pct: f64,
    /// Plain wasted pushes.
    pub plain_wasted: u64,
    /// Cooperative wasted pushes (must be 0).
    pub coop_wasted: u64,
    /// Load reductions (plain, coop).
    pub load_reduction_pct: (f64, f64),
}

/// Runs the cooperative-clients experiment.
pub fn exp_coop(scale: Scale, seed: u64) -> Result<Report> {
    let obs = specweb_core::obs::Obs::new();
    let topo = crate::workloads::topology();
    let trace = crate::workloads::bu_trace_with(scale, seed, Some(&obs))?;
    let sim = SpecSim::new(&trace, &topo).with_obs(&obs);
    let total_days = trace.duration.as_millis() / 86_400_000;

    let mut cfg = SpecConfig::baseline(0.3);
    cfg.estimator.history_days = crate::workloads::history_days(scale);
    cfg.warmup_days = crate::workloads::warmup_days(scale);
    // Session caches create re-push opportunities (the waste that
    // cooperation eliminates).
    cfg.cache = CacheModel::Session {
        timeout: Duration::from_secs(3_600),
    };
    let store = MatrixStore::precompute(&cfg.estimator, &trace, total_days)?;
    store.record_truncation(&obs);

    let tps: &[f64] = match scale {
        Scale::Full => &[0.7, 0.5, 0.3, 0.15],
        Scale::Quick => &[0.5, 0.15],
    };
    // One baseline for every (T_p, cooperation) cell — neither knob is
    // read by the demand replay.
    let baseline = sim.baseline_totals(&cfg)?;

    let mut rows = Vec::new();
    for &tp in tps {
        cfg.policy = Policy::Threshold { tp };
        cfg.cooperative = false;
        let plain = sim.run_with_store_and_baseline(&cfg, Some(&store), Some(&baseline))?;
        cfg.cooperative = true;
        let coop = sim.run_with_store_and_baseline(&cfg, Some(&store), Some(&baseline))?;
        rows.push(CoopRow {
            tp,
            plain_traffic_pct: plain.ratios.traffic_increase_pct(),
            coop_traffic_pct: coop.ratios.traffic_increase_pct(),
            plain_wasted: plain.wasted_pushes,
            coop_wasted: coop.wasted_pushes,
            load_reduction_pct: (
                plain.ratios.server_load_reduction_pct(),
                coop.ratios.server_load_reduction_pct(),
            ),
        });
    }

    let mut text = String::new();
    text.push_str("plain vs cooperative clients (session cache, 60 min)\n\n");
    text.push_str("  T_p    traffic plain→coop    wasted plain→coop    load plain→coop\n");
    for r in &rows {
        text.push_str(&format!(
            "{:>5.2}   {:>8} → {:>7}   {:>8} → {:>5}    −{:.1}% → −{:.1}%\n",
            r.tp,
            pct(r.plain_traffic_pct),
            pct(r.coop_traffic_pct),
            r.plain_wasted,
            r.coop_wasted,
            r.load_reduction_pct.0,
            r.load_reduction_pct.1
        ));
    }
    text.push_str(
        "\npaper: cooperation yields better bandwidth utilization — same\n\
         load savings, strictly less traffic, zero wasted pushes.\n",
    );

    Ok(
        Report::new("exp-coop", "cooperative clients (§3.4)", text, &rows)
            .with_metrics(obs.snapshot()),
    )
}

// ---------------------------------------------------------------------
// EXP-PREF — server-assisted & client-initiated prefetching (§3.4)
// ---------------------------------------------------------------------

/// One strategy's outcome.
#[derive(Debug, Serialize)]
pub struct PrefRow {
    /// Strategy label.
    pub strategy: String,
    /// The four metrics.
    pub traffic_pct: f64,
    /// Load reduction.
    pub load_reduction_pct: f64,
    /// Time reduction.
    pub time_reduction_pct: f64,
    /// Miss reduction.
    pub miss_reduction_pct: f64,
    /// Pushes / prefetches issued.
    pub pushes: u64,
    /// Client-initiated prefetch requests.
    pub prefetches: u64,
}

/// Runs the prefetching-strategy comparison.
pub fn exp_pref(scale: Scale, seed: u64) -> Result<Report> {
    let obs = specweb_core::obs::Obs::new();
    let topo = crate::workloads::topology();
    let trace = crate::workloads::bu_trace_with(scale, seed, Some(&obs))?;
    let sim = SpecSim::new(&trace, &topo).with_obs(&obs);
    let total_days = trace.duration.as_millis() / 86_400_000;

    let base = || {
        let mut c = SpecConfig::baseline(0.3);
        c.estimator.history_days = crate::workloads::history_days(scale);
        c.warmup_days = crate::workloads::warmup_days(scale);
        c.cache = CacheModel::Session {
            timeout: Duration::from_secs(3_600),
        };
        c
    };
    let store = MatrixStore::precompute(&base().estimator, &trace, total_days)?;
    store.record_truncation(&obs);

    // All five strategies share one baseline (same cache, same warmup).
    let baseline = sim.baseline_totals(&base())?;

    let mut rows = Vec::new();
    let mut run = |label: &str, cfg: &SpecConfig| -> Result<()> {
        let out = sim.run_with_store_and_baseline(cfg, Some(&store), Some(&baseline))?;
        rows.push(PrefRow {
            strategy: label.to_string(),
            traffic_pct: out.ratios.traffic_increase_pct(),
            load_reduction_pct: out.ratios.server_load_reduction_pct(),
            time_reduction_pct: out.ratios.service_time_reduction_pct(),
            miss_reduction_pct: out.ratios.miss_rate_reduction_pct(),
            pushes: out.pushes,
            prefetches: out.prefetches,
        });
        Ok(())
    };

    run("server push (T_p = 0.3)", &base())?;

    let mut c = base();
    c.policy = Policy::EmbeddingOnly;
    run("embedding-only push", &c)?;

    let mut c = base();
    c.policy = Policy::Hybrid {
        push_tp: 0.95,
        hint_tp: 0.2,
    };
    c.hint_policy = HintPolicy::Threshold { tp: 0.3 };
    run("hybrid: push certain, hint rest", &c)?;

    let mut c = base();
    c.policy = Policy::Hybrid {
        push_tp: 0.95,
        hint_tp: 0.2,
    };
    c.hint_policy = HintPolicy::ProfileGated {
        tp: 0.25,
        own_tp: 0.4,
    };
    run("hybrid, profile-gated hints", &c)?;

    let mut c = base();
    c.policy = Policy::TopK { k: 0, floor: 1.0 };
    c.client_profile_prefetch = Some(0.4);
    run("client profile prefetch only", &c)?;

    let mut text = String::new();
    text.push_str("strategy                            traffic     load     time     miss   pushes  prefetch\n");
    for r in &rows {
        text.push_str(&format!(
            "{:<34} {:>8}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}\n",
            r.strategy,
            pct(r.traffic_pct),
            pct(-r.load_reduction_pct),
            pct(-r.time_reduction_pct),
            pct(-r.miss_reduction_pct),
            r.pushes,
            r.prefetches
        ));
    }
    text.push_str(
        "\npaper: client-initiated prefetching is very effective for\n\
         frequently-traversed patterns but useless for new documents —\n\
         only server speculation covers those; the hybrid combines both.\n",
    );

    Ok(Report::new(
        "exp-pref",
        "server-assisted prefetching and hybrids (§3.4)",
        text,
        &rows,
    )
    .with_metrics(obs.snapshot()))
}

// ---------------------------------------------------------------------
// EXP-CLASS — document classes & update behaviour (§2)
// ---------------------------------------------------------------------

/// The classification summary.
#[derive(Debug, Serialize)]
pub struct ClassResult {
    /// Counts: remotely / locally / globally popular, never accessed.
    pub remote: usize,
    /// Locally popular.
    pub local: usize,
    /// Globally popular.
    pub global: usize,
    /// Never accessed.
    pub unaccessed: usize,
    /// Measured mean updates/day per class (remote, local, global).
    pub update_rates: (f64, f64, f64),
    /// Fraction of all updates hitting the mutable subset.
    pub mutable_update_share: f64,
}

/// Runs the classification experiment.
pub fn exp_class(scale: Scale, seed: u64) -> Result<Report> {
    let trace = crate::workloads::bu_trace(scale, seed)?;
    let days = match scale {
        Scale::Full => 186, // the paper's monitoring span
        Scale::Quick => 30,
    };
    let updates = UpdateProcess::default().generate(&SeedTree::new(seed), &trace.catalog, days);
    let classified = Classifier::default().classify(&trace, &updates, days);
    let (r, l, g, u) = Classifier::class_summary(&classified);

    // Measured update rates per *ground-truth* class.
    let mut per_class = [(0u64, 0usize); 3]; // (updates, docs)
    for d in trace.catalog.iter() {
        let idx = match d.class {
            PopularityClass::Remote => 0,
            PopularityClass::Local => 1,
            PopularityClass::Global => 2,
        };
        per_class[idx].1 += 1;
    }
    let mut mutable_updates = 0u64;
    for upd in &updates {
        let doc = trace.catalog.get(upd.doc);
        let idx = match doc.class {
            PopularityClass::Remote => 0,
            PopularityClass::Local => 1,
            PopularityClass::Global => 2,
        };
        per_class[idx].0 += 1;
        if doc.mutable {
            mutable_updates += 1;
        }
    }
    let rate = |i: usize| {
        if per_class[i].1 == 0 {
            0.0
        } else {
            per_class[i].0 as f64 / (per_class[i].1 as f64 * days as f64)
        }
    };
    let result = ClassResult {
        remote: r,
        local: l,
        global: g,
        unaccessed: u,
        update_rates: (rate(0), rate(1), rate(2)),
        mutable_update_share: mutable_updates as f64 / updates.len().max(1) as f64,
    };

    let text = format!(
        "classified {} documents over a {days}-day update history\n\n\
         class               paper (of 974)   here (of {})\n\
         remotely popular    99               {}\n\
         locally popular     510              {}\n\
         globally popular    365              {}\n\
         never accessed      —                {}\n\n\
         measured update probability per document per day:\n\
         remote {:.3}%/day | local {:.3}%/day | global {:.3}%/day\n\
         (paper: <0.5%/day for remote/global, ≈2%/day for local)\n\n\
         share of updates hitting the mutable subset: {:.0}%\n\
         (paper: frequent updates confined to a very small subset)\n",
        classified.len(),
        classified.len(),
        result.remote,
        result.local,
        result.global,
        result.unaccessed,
        result.update_rates.0 * 100.0,
        result.update_rates.1 * 100.0,
        result.update_rates.2 * 100.0,
        result.mutable_update_share * 100.0,
    );

    Ok(Report::new(
        "exp-class",
        "document popularity classes and update behaviour (§2)",
        text,
        &result,
    ))
}

// ---------------------------------------------------------------------
// EXP-SIZING — eq. 10 storage sizing (§2.3)
// ---------------------------------------------------------------------

/// One sizing row.
#[derive(Debug, Serialize)]
pub struct SizingRow {
    /// Number of servers.
    pub n: usize,
    /// Target shielding α.
    pub alpha: f64,
    /// Required storage (bytes).
    pub storage: u64,
}

/// Runs the sizing table.
pub fn exp_sizing(_scale: Scale, _seed: u64) -> Result<Report> {
    let lambda = specweb_core::dist::ExponentialPopularity::BU_WWW_LAMBDA;
    let mut rows = Vec::new();
    let mut text = String::new();
    text.push_str(&format!(
        "λ = {lambda:.3e} (the paper's cs-www.bu.edu fit)\n\n"
    ));
    text.push_str("  n servers   target α    storage needed\n");
    for (n, alpha) in [
        (10usize, 0.5),
        (10, 0.9),
        (10, 0.96),
        (100, 0.9),
        (100, 0.96),
    ] {
        let b = alloc::storage_for_alpha(n, lambda, alpha)?;
        rows.push(SizingRow {
            n,
            alpha,
            storage: b.get(),
        });
        text.push_str(&format!(
            "{:>10}   {:>7.0}%   {:>10.1} MB\n",
            n,
            alpha * 100.0,
            b.as_f64() / 1e6
        ));
    }
    // The reverse direction: what 500 MB buys for 100 servers.
    let a = alloc::alpha_for_storage(100, lambda, Bytes::new(500_000_000));
    text.push_str(&format!(
        "\n500 MB across 100 servers shields α = {:.1}% (paper: ≈96%)\n",
        a * 100.0
    ));
    text.push_str(
        "paper anchor: 10 servers at 90% ⇒ 36 MB. Note eq. 10 as printed\n\
         has a typo (ln 1/α); the numbers match ln 1/(1−α), implemented here.\n",
    );

    Ok(Report::new(
        "exp-sizing",
        "proxy storage sizing via eq. 10 (§2.3)",
        text,
        &rows,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Scale = Scale::Quick;

    #[test]
    fn tab1_matches_paper_defaults() {
        let r = tab1(S, 0).unwrap();
        assert_eq!(r.json["comm_cost"], 1.0);
        assert_eq!(r.json["serv_cost"], 10_000.0);
        assert_eq!(r.json["stride_timeout_s"], 5);
        assert_eq!(r.json["history_length_days"], 60);
        assert_eq!(r.json["update_cycle_days"], 1);
    }

    #[test]
    fn exp_upd_shows_staleness_cost() {
        let r = exp_upd(S, 21).unwrap();
        let rows = r.json.as_array().unwrap();
        // Row 0 is the freshest schedule; the longest cycle (row 2) must
        // degrade at least as much as the short cycle (row 1).
        let deg: Vec<f64> = rows
            .iter()
            .map(|x| x["degradation_vs_best"].as_f64().unwrap())
            .collect();
        assert_eq!(deg[0], 0.0);
        assert!(
            deg[2] >= deg[1] - 1.0,
            "long cycle should degrade at least as much: {deg:?}"
        );
        assert!(
            deg[2] > 0.0,
            "stale estimates should cost something: {deg:?}"
        );
    }

    #[test]
    fn exp_size_reports_budget_respecting_optima() {
        let r = exp_size(S, 22).unwrap();
        let optima = r.json["optima"].as_array().unwrap();
        assert!(!optima.is_empty(), "no budget was reachable at all");
        // Every reported optimum respects its budget: some grid cell
        // with that MaxSize achieves the reduction within the budget.
        let grid = r.json["grid"].as_array().unwrap();
        for opt in optima {
            let budget = opt[0].as_f64().unwrap();
            let ms = opt[1].as_u64().unwrap();
            let red = opt[2].as_f64().unwrap();
            let witness = grid.iter().any(|c| {
                c["max_size"].as_u64().unwrap() == ms
                    && c["traffic_pct"].as_f64().unwrap() <= budget
                    && (c["load_reduction_pct"].as_f64().unwrap() - red).abs() < 1e-9
            });
            assert!(witness, "optimum {opt} has no witness cell");
        }
    }

    #[test]
    fn exp_cache_runs_all_models() {
        let r = exp_cache(S, 23).unwrap();
        let rows = r.json.as_array().unwrap();
        assert_eq!(rows.len(), 4);
        for row in rows {
            let load = row["load_reduction_pct"].as_f64().unwrap();
            assert!(load >= -1.0, "cache row regressed: {row}");
        }
    }

    #[test]
    fn exp_coop_eliminates_waste() {
        let r = exp_coop(S, 24).unwrap();
        for row in r.json.as_array().unwrap() {
            assert_eq!(row["coop_wasted"], 0);
            let plain = row["plain_traffic_pct"].as_f64().unwrap();
            let coop = row["coop_traffic_pct"].as_f64().unwrap();
            assert!(coop <= plain + 1e-9, "cooperation increased traffic: {row}");
        }
    }

    #[test]
    fn exp_pref_compares_strategies() {
        let r = exp_pref(S, 25).unwrap();
        let rows = r.json.as_array().unwrap();
        assert_eq!(rows.len(), 5);
        // Client-only prefetching issues prefetches but no pushes.
        let client_only = &rows[4];
        assert_eq!(client_only["pushes"], 0);
        assert!(client_only["prefetches"].as_u64().unwrap() > 0);
    }

    #[test]
    fn exp_class_finds_all_classes() {
        let r = exp_class(S, 26).unwrap();
        assert!(r.json["remote"].as_u64().unwrap() > 0);
        assert!(r.json["local"].as_u64().unwrap() > 0);
        assert!(r.json["global"].as_u64().unwrap() > 0);
        // Local docs update visibly faster than remote ones.
        let rates = r.json["update_rates"].as_array().unwrap();
        let remote = rates[0].as_f64().unwrap();
        let local = rates[1].as_f64().unwrap();
        assert!(local > remote, "local {local} vs remote {remote}");
        // Mutable docs carry the bulk of updates.
        assert!(r.json["mutable_update_share"].as_f64().unwrap() > 0.5);
    }

    #[test]
    fn exp_sizing_reproduces_paper_numbers() {
        let r = exp_sizing(S, 0).unwrap();
        let rows = r.json.as_array().unwrap();
        // 10 servers at 90% ⇒ ≈36–37 MB.
        let row = rows
            .iter()
            .find(|x| x["n"] == 10 && x["alpha"] == 0.9)
            .unwrap();
        let mb = row["storage"].as_f64().unwrap() / 1e6;
        assert!((mb - 36.9).abs() < 1.0, "got {mb} MB");
    }
}
