//! Figure 3 — bandwidth saved as a result of dissemination.
//!
//! Trace-driven: the % reduction in network traffic (bytes × hops) as a
//! function of the number of proxies, with the most popular 10% and 4%
//! of the server's data disseminated (the same data to all proxies, as
//! in the paper). Each curve is labeled with the total proxy storage it
//! consumes, exactly like the figure.

use serde::Serialize;
use specweb_core::Result;
use specweb_dissem::simulate::{DisseminationConfig, DisseminationSim};

use crate::{Report, Scale};

/// One point of one curve.
#[derive(Debug, Serialize)]
pub struct Fig3Point {
    /// Number of proxies.
    pub n_proxies: usize,
    /// Fraction of bytes×hops saved.
    pub reduction: f64,
    /// Fraction of requests intercepted.
    pub intercepted: f64,
    /// Total storage across all proxies (bytes).
    pub total_storage: u64,
    /// Median per-request service time, ms (exact order statistic).
    pub p50_ms: f64,
    /// 99th-percentile service time, ms — the tail interception trims.
    pub p99_ms: f64,
    /// Baseline (no-dissemination) 99th percentile, ms.
    pub baseline_p99_ms: f64,
}

/// Machine-readable result. `top10`/`top4` stay at the top level (the
/// figure's two curves); `replication` summarizes the extra seeds.
#[derive(Debug, Serialize)]
pub struct Fig3 {
    /// The 10%-dissemination curve.
    pub top10: Vec<Fig3Point>,
    /// The 4%-dissemination curve.
    pub top4: Vec<Fig3Point>,
    /// Cross-seed dispersion of the headline number.
    pub replication: Fig3Replication,
}

/// Dispersion of the top-10% saved fraction at the largest proxy count,
/// across the base seed plus [`crate::fig5::EXTRA_REPS`] derived seeds.
#[derive(Debug, Serialize)]
pub struct Fig3Replication {
    /// All seeds, base first.
    pub seeds: Vec<u64>,
    /// Mean saved fraction at the maximum proxy count (top-10% curve).
    pub saved_at_max_mean: f64,
    /// Sample standard deviation of the same.
    pub saved_at_max_sd: f64,
}

/// One seed's pair of curves plus the trace length that produced them.
struct Curves {
    top10: Vec<Fig3Point>,
    top4: Vec<Fig3Point>,
    trace_len: usize,
}

/// Runs both dissemination sweeps for one seed. The proxy-count grid
/// fans out over `jobs` workers; every point is an independent replay
/// of the same mined profiles, so output is identical for any `jobs`.
fn compute(
    scale: Scale,
    seed: u64,
    jobs: usize,
    obs: Option<&specweb_core::obs::Obs>,
) -> Result<Curves> {
    let topo = crate::workloads::topology();
    let trace = crate::workloads::bu_trace_with(scale, seed, obs)?;
    let mut sim = DisseminationSim::new(&trace, &topo)?;
    if let Some(obs) = obs {
        sim = sim.with_obs(obs);
    }

    let proxy_counts: &[usize] = match scale {
        Scale::Full => &[1, 2, 4, 6, 9, 12, 16, 20, 27, 33, 39],
        Scale::Quick => &[1, 2, 4, 9, 16, 27],
    };

    let sweep = |fraction: f64| -> Result<Vec<Fig3Point>> {
        specweb_core::par::Pool::new(jobs).try_map_indexed(proxy_counts, |_, &k| {
            let out = sim.run(
                &DisseminationConfig {
                    fraction,
                    n_proxies: k,
                    ..DisseminationConfig::default()
                },
                &[],
            )?;
            Ok(Fig3Point {
                n_proxies: k,
                reduction: out.reduction,
                intercepted: out.intercepted_fraction,
                total_storage: out.total_proxy_storage.get(),
                p50_ms: out.service_times.p50_ms,
                p99_ms: out.service_times.p99_ms,
                baseline_p99_ms: out.baseline_service_times.p99_ms,
            })
        })
    };

    Ok(Curves {
        top10: sweep(0.10)?,
        top4: sweep(0.04)?,
        trace_len: trace.len(),
    })
}

/// Runs the experiment: the base seed's curves, replicated across
/// [`crate::fig5::EXTRA_REPS`] extra derived seeds run in parallel.
pub fn run(scale: Scale, seed: u64) -> Result<Report> {
    let tree = specweb_core::rng::SeedTree::new(seed);
    let mut seeds = vec![seed];
    seeds.extend((0..crate::fig5::EXTRA_REPS as u64).map(|r| tree.child_idx("fig3-rep", r).seed()));
    // One fan-out over seeds; each seed's inner proxy grid runs serially
    // so the parallelism does not nest. All seeds share one obs: counter
    // merges are commutative sums, so totals are schedule-independent.
    let obs = specweb_core::obs::Obs::new();
    let mut curves = specweb_core::par::Pool::auto()
        .try_map_indexed(&seeds, |_, &s| compute(scale, s, 1, Some(&obs)))?;

    let saved_at_max: Vec<f64> = curves
        .iter()
        .filter_map(|c| c.top10.last())
        .map(|p| p.reduction)
        .collect();
    let (mean, sd) = crate::fig5::mean_sd(&saved_at_max);

    let base = curves.swap_remove(0);
    let result = Fig3 {
        top10: base.top10,
        top4: base.top4,
        replication: Fig3Replication {
            seeds: seeds.clone(),
            saved_at_max_mean: mean,
            saved_at_max_sd: sd,
        },
    };

    let mut text = String::new();
    text.push_str(&format!(
        "workload: {} accesses; same data disseminated to all proxies\n\n",
        base.trace_len
    ));
    text.push_str("            -------- top 10% of data --------      ---- top 4% of data ----\n");
    text.push_str(
        " proxies    saved   intercept  storage  p99 ms      saved   intercept  storage\n",
    );
    for (a, b) in result.top10.iter().zip(&result.top4) {
        text.push_str(&format!(
            "{:>8}   {:>6.1}%   {:>6.1}%  {:>8}  {:>6.0}   {:>7.1}%   {:>6.1}%  {:>8}\n",
            a.n_proxies,
            a.reduction * 100.0,
            a.intercepted * 100.0,
            format!("{}K", a.total_storage / 1024),
            a.p99_ms,
            b.reduction * 100.0,
            b.intercepted * 100.0,
            format!("{}K", b.total_storage / 1024),
        ));
    }
    if let Some(last) = result.top10.last() {
        text.push_str(&format!(
            "\nservice-time tail (top-10% curve, max proxies): p50 {:.0} ms, \
             p99 {:.0} ms vs baseline p99 {:.0} ms\n",
            last.p50_ms, last.p99_ms, last.baseline_p99_ms
        ));
    }
    text.push_str("\nbytes×hops saved (%) vs number of proxies:\n");
    let series = vec![
        crate::plot::Series::new(
            "10% disseminated",
            result
                .top10
                .iter()
                .map(|p| (p.n_proxies as f64, p.reduction * 100.0))
                .collect(),
        ),
        crate::plot::Series::new(
            "4% disseminated",
            result
                .top4
                .iter()
                .map(|p| (p.n_proxies as f64, p.reduction * 100.0))
                .collect(),
        ),
    ];
    text.push_str(&crate::plot::render(&series, 64, 12));
    text.push_str(
        "\nshape check: savings grow with proxies and with the disseminated\n\
         fraction, with diminishing returns (the paper reaches ≈40% at the\n\
         right edge of its tree).\n",
    );
    text.push_str(&format!(
        "\nreplication across {} independent seeds {:?}: saved at the\n\
         largest proxy count (top-10% curve) {:.1}% ± {:.1}.\n",
        seeds.len(),
        seeds,
        mean * 100.0,
        sd * 100.0
    ));

    Ok(Report::new(
        "fig3",
        "bandwidth saved (bytes × hops) vs number of proxies",
        text,
        &result,
    )
    .with_metrics(obs.snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_quick_has_the_right_shape() {
        let r = run(Scale::Quick, 13).unwrap();
        let curve = |name: &str| -> Vec<(usize, f64)> {
            r.json[name]
                .as_array()
                .unwrap()
                .iter()
                .map(|p| {
                    (
                        p["n_proxies"].as_u64().unwrap() as usize,
                        p["reduction"].as_f64().unwrap(),
                    )
                })
                .collect()
        };
        let top10 = curve("top10");
        let top4 = curve("top4");

        // Monotone in proxies (within tolerance).
        for w in top10.windows(2) {
            assert!(w[1].1 >= w[0].1 - 0.02, "top10 not monotone: {w:?}");
        }
        // More data ⇒ more savings at the right edge.
        assert!(top10.last().unwrap().1 >= top4.last().unwrap().1 - 1e-9);
        // Meaningful savings at the right edge.
        assert!(
            top10.last().unwrap().1 > 0.10,
            "max savings too small: {}",
            top10.last().unwrap().1
        );

        // The replication summary is present and sane.
        let rep = &r.json["replication"];
        assert_eq!(
            rep["seeds"].as_array().unwrap().len(),
            1 + crate::fig5::EXTRA_REPS
        );
        assert!(rep["saved_at_max_mean"].as_f64().unwrap() > 0.0);
        assert!(rep["saved_at_max_sd"].as_f64().unwrap() >= 0.0);
    }
}
