//! Figure 1 — popularity of data blocks and cumulative bandwidth saved.
//!
//! The paper's measurements on `cs-www.bu.edu`: the most popular 256 KB
//! block (0.5% of bytes) drew 69% of all requests; 10% of blocks drew
//! 91%. We regenerate the two curves (per-block request share and
//! cumulative bandwidth saved by serving the top blocks at an earlier
//! stage) from the bu workload and report the same two checkpoints.

use serde::Serialize;
use specweb_core::ids::ServerId;
use specweb_core::units::Bytes;
use specweb_core::Result;
use specweb_dissem::analysis::{BlockPopularity, ServerProfile};

use crate::{Report, Scale};

/// Machine-readable result.
#[derive(Debug, Serialize)]
pub struct Fig1 {
    /// Block size used (scaled with the catalog so the block count is
    /// comparable to the paper's).
    pub block_size: u64,
    /// Request share per block, most popular first.
    pub block_request_share: Vec<f64>,
    /// Cumulative bandwidth saved after each block.
    pub cumulative_bandwidth_saved: Vec<f64>,
    /// Request share of the most popular ~0.5% of bytes.
    pub head_share_0p5: f64,
    /// Request share of the most popular 10% of bytes.
    pub head_share_10: f64,
    /// Fitted exponential rate λ.
    pub lambda: f64,
}

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Result<Report> {
    let trace = crate::workloads::bu_trace(scale, seed)?;
    let days = trace.duration.as_millis() / 86_400_000;
    let profile = ServerProfile::from_trace(&trace, ServerId::new(0), days)?;

    // The paper's 256 KB blocks split its ~36 MB of remotely-accessed
    // bytes into ~140 blocks; scale the block size to produce a similar
    // resolution on our catalog.
    let accessed = profile.remotely_accessed_bytes();
    let block_size = Bytes::new((accessed.get() / 140).max(4 * 1024));
    let blocks = BlockPopularity::from_profile(&profile, block_size)?;

    let head = |frac: f64| {
        let b = Bytes::new((accessed.as_f64() * frac) as u64);
        profile.hit_curve.hit_fraction(b)
    };
    let result = Fig1 {
        block_size: block_size.get(),
        block_request_share: blocks.block_request_share.clone(),
        cumulative_bandwidth_saved: blocks.cumulative_bandwidth_saved.clone(),
        head_share_0p5: head(0.005),
        head_share_10: head(0.10),
        lambda: profile.lambda,
    };

    let mut text = String::new();
    text.push_str(&format!(
        "workload: {} accesses; remotely-accessed bytes: {accessed}; block = {block_size}\n\n",
        trace.len()
    ));
    text.push_str("block  req-share  cum-bandwidth-saved\n");
    let n = result.block_request_share.len();
    for i in 0..n {
        // Print the head fully and the tail sparsely, like the figure.
        if i < 12 || i % (n / 12).max(1) == 0 || i == n - 1 {
            text.push_str(&format!(
                "{:>5}  {:>8.3}%  {:>8.1}%\n",
                i + 1,
                result.block_request_share[i] * 100.0,
                result.cumulative_bandwidth_saved[i] * 100.0
            ));
        }
    }
    text.push_str(
        "\nper-block request share (%, log-ish head) and cumulative bandwidth saved (%):\n",
    );
    let series = vec![
        crate::plot::Series::new(
            "share per block",
            result
                .block_request_share
                .iter()
                .enumerate()
                .map(|(i, &v)| ((i + 1) as f64, v * 100.0))
                .collect(),
        ),
        crate::plot::Series::new(
            "cum. bandwidth saved",
            result
                .cumulative_bandwidth_saved
                .iter()
                .enumerate()
                .map(|(i, &v)| ((i + 1) as f64, v * 100.0))
                .collect(),
        ),
    ];
    text.push_str(&crate::plot::render(&series, 64, 12));
    text.push_str(&format!(
        "\npaper: top 0.5% of bytes ⇒ 69% of requests | here: {:.0}%\n",
        result.head_share_0p5 * 100.0
    ));
    text.push_str(&format!(
        "paper: top  10% of bytes ⇒ 91% of requests | here: {:.0}%\n",
        result.head_share_10 * 100.0
    ));
    text.push_str(&format!(
        "fitted exponential λ = {:.3e} (paper: 6.247e-7 on a 36.5 MB corpus)\n",
        result.lambda
    ));

    Ok(Report::new(
        "fig1",
        "popularity of data blocks & cumulative bandwidth saved",
        text,
        &result,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_quick_reproduces_concentration() {
        let r = run(Scale::Quick, 11).unwrap();
        let head10 = r.json["head_share_10"].as_f64().unwrap();
        assert!(
            head10 > 0.5,
            "top 10% of bytes should cover most requests, got {head10}"
        );
        let shares = r.json["block_request_share"].as_array().unwrap();
        assert!(!shares.is_empty());
        // Most popular block dominates the last one.
        let first = shares[0].as_f64().unwrap();
        let last = shares[shares.len() - 1].as_f64().unwrap();
        assert!(first > last);
    }
}
