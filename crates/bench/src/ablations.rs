//! Ablation studies — experiments the paper did not run but whose
//! design choices it makes implicitly. Each isolates one mechanism of
//! the implementation and quantifies what it buys:
//!
//! * [`exp_closure`] — speculating on `P*` vs the direct `P` (how much
//!   does the transitive closure actually contribute?);
//! * [`exp_rank`] — ranking dissemination candidates by request density
//!   (α-optimal) vs request count (traffic-optimal);
//! * [`exp_tailored`] — same-data-everywhere vs per-proxy tailored
//!   replicas (footnote 5's geographic refinement);
//! * [`exp_shed`] — §2.3 dynamic load shedding under a proxy request
//!   cap sweep;
//! * [`exp_hier`] — one- vs multi-level dissemination under load (the
//!   §2.3 bottleneck discussion);
//! * [`exp_alloc`] — the eq. 4–5 optimizer vs uniform/proportional
//!   baselines vs the empirical greedy, on *mined* profiles;
//! * [`exp_aging`] — the estimator's hard history window vs exponential
//!   aging on a drifting site (§3.4's "aging mechanism" sketch);
//! * [`exp_digest`] — exact vs Bloom cooperative cache digests: wire
//!   overhead at equal suppression quality;
//! * [`exp_queue`] — the M/G/1 extension: what the measured server-load
//!   reductions mean as response time at a peak-hour operating point.

use serde::Serialize;
use specweb_core::ids::ServerId;
use specweb_core::units::Bytes;
use specweb_core::Result;
use specweb_dissem::alloc::{
    allocate_proportional, allocate_uniform, optimize, optimize_empirical, ServerModel,
};
use specweb_dissem::analysis::ServerProfile;
use specweb_dissem::hierarchy;
use specweb_dissem::simulate::{DisseminationConfig, DisseminationSim};
use specweb_netsim::queueing::{load_relief, Mg1};
use specweb_spec::cooperative::{BloomDigest, Digest, ExactDigest};
use specweb_spec::estimator::MatrixStore;
use specweb_spec::policy::Policy;
use specweb_spec::simulate::{SpecConfig, SpecSim};

use crate::{pct, Report, Scale};

// ---------------------------------------------------------------------
// EXP-CLOSURE — P* vs P
// ---------------------------------------------------------------------

/// One threshold's paired outcome.
#[derive(Debug, Serialize)]
pub struct ClosureRow {
    /// Threshold.
    pub tp: f64,
    /// (traffic, load reduction) speculating on the closure `P*`.
    pub closure: (f64, f64),
    /// (traffic, load reduction) speculating on the direct `P`.
    pub direct: (f64, f64),
}

/// Machine-readable exp-closure result.
#[derive(Debug, Serialize)]
pub struct ClosureResult {
    /// Per-threshold outcomes.
    pub rows: Vec<ClosureRow>,
    /// Closure rows truncated by the safety valve across all update
    /// boundaries — nonzero means `P*` is approximate, not exact.
    pub truncated_rows: u64,
    /// Sweep of the safety-valve bound itself.
    pub valve: Vec<ValveRow>,
}

/// One safety-valve bound's outcome: how much truncation it causes and
/// what that truncation does to the headline replay.
#[derive(Debug, Serialize)]
pub struct ValveRow {
    /// The `closure_max_row` bound.
    pub max_row: usize,
    /// Closure rows cut short at this bound.
    pub truncated_rows: u64,
    /// Traffic increase (%) replaying at the probe threshold.
    pub traffic_pct: f64,
    /// Server-load reduction (%) at the probe threshold.
    pub load_reduction_pct: f64,
}

/// Runs the closure-vs-direct ablation.
pub fn exp_closure(scale: Scale, seed: u64) -> Result<Report> {
    let obs = specweb_core::obs::Obs::new();
    let topo = crate::workloads::topology();
    let trace = crate::workloads::bu_trace_with(scale, seed, Some(&obs))?;
    let sim = SpecSim::new(&trace, &topo).with_obs(&obs);
    let total_days = trace.duration.as_millis() / 86_400_000;

    let mut cfg = SpecConfig::baseline(0.5);
    cfg.estimator.history_days = crate::workloads::history_days(scale);
    cfg.warmup_days = crate::workloads::warmup_days(scale);
    let store = MatrixStore::precompute(&cfg.estimator, &trace, total_days)?;
    store.record_truncation(&obs);

    let tps: &[f64] = match scale {
        Scale::Full => &[0.7, 0.5, 0.3, 0.15],
        Scale::Quick => &[0.5, 0.15],
    };
    // The whole ablation — both policies, every T_p, every safety-valve
    // bound — shares one baseline replay (same cache, same warmup).
    let baseline = sim.baseline_totals(&cfg)?;

    let mut rows = Vec::new();
    for &tp in tps {
        cfg.policy = Policy::Threshold { tp };
        let c = sim.run_with_store_and_baseline(&cfg, Some(&store), Some(&baseline))?;
        cfg.policy = Policy::DirectThreshold { tp };
        let d = sim.run_with_store_and_baseline(&cfg, Some(&store), Some(&baseline))?;
        rows.push(ClosureRow {
            tp,
            closure: (
                c.ratios.traffic_increase_pct(),
                c.ratios.server_load_reduction_pct(),
            ),
            direct: (
                d.ratios.traffic_increase_pct(),
                d.ratios.server_load_reduction_pct(),
            ),
        });
    }

    let mut text = String::new();
    text.push_str("speculate on P* (closure) vs the direct matrix P\n\n");
    text.push_str("  T_p     P*: traffic/load       P: traffic/load\n");
    for r in &rows {
        text.push_str(&format!(
            "{:>5.2}   {:>8} / {:>7}   {:>8} / {:>7}\n",
            r.tp,
            pct(r.closure.0),
            pct(-r.closure.1),
            pct(r.direct.0),
            pct(-r.direct.1)
        ));
    }
    text.push_str(
        "\nthe closure reaches documents two or more clicks ahead, buying\n\
         extra load reduction at extra traffic; the paper's policy is\n\
         defined on P*, and this ablation shows what that choice costs.\n",
    );
    // No silent caps: if the closure's safety valve cut any row short,
    // the comparison above is against an approximate P*. Say so.
    let truncated_rows = store.truncated_rows();
    if truncated_rows > 0 {
        text.push_str(&format!(
            "\nwarning: the closure safety valve truncated {truncated_rows} row(s)\n\
             across the update boundaries — P* here is a truncated\n\
             approximation, not the exact max-product closure.\n"
        ));
    } else {
        text.push_str("\nclosure safety valve: 0 rows truncated (P* is exact here).\n");
    }

    // Sweep the safety-valve bound itself: tighten `closure_max_row`
    // until it bites, and measure what the truncated P* costs at one
    // probe threshold. This quantifies how much headroom the default
    // bound leaves before approximation starts eating load reduction.
    let probe_tp = 0.3;
    let bounds: &[usize] = match scale {
        Scale::Full => &[2, 4, 8, 16, 32, 64, 128],
        Scale::Quick => &[2, 8, 32, 128],
    };
    let mut valve = Vec::with_capacity(bounds.len());
    cfg.policy = Policy::Threshold { tp: probe_tp };
    for &max_row in bounds {
        let mut vcfg = cfg;
        vcfg.estimator.closure_max_row = max_row;
        let vstore = MatrixStore::precompute(&vcfg.estimator, &trace, total_days)?;
        vstore.record_truncation(&obs);
        let out = sim.run_with_store_and_baseline(&vcfg, Some(&vstore), Some(&baseline))?;
        valve.push(ValveRow {
            max_row,
            truncated_rows: vstore.truncated_rows(),
            traffic_pct: out.ratios.traffic_increase_pct(),
            load_reduction_pct: out.ratios.server_load_reduction_pct(),
        });
    }
    text.push_str(&format!(
        "\nsafety-valve bound sweep (T_p = {probe_tp}):\n\
         max_row   truncated     traffic      load\n"
    ));
    for v in &valve {
        text.push_str(&format!(
            "{:>7}   {:>9}   {:>9}  {:>8}\n",
            v.max_row,
            v.truncated_rows,
            pct(v.traffic_pct),
            pct(-v.load_reduction_pct)
        ));
    }
    text.push_str(
        "\nexpected: tightening the bound increases truncation and can only\n\
         shrink the speculation set — a bound that truncates nothing is\n\
         provably free, and the default should sit in that regime.\n",
    );

    Ok(Report::new(
        "exp-closure",
        "ablation: speculating on P* vs direct P",
        text,
        &ClosureResult {
            rows,
            truncated_rows,
            valve,
        },
    )
    .with_metrics(obs.snapshot()))
}

// ---------------------------------------------------------------------
// EXP-RANK — density vs traffic ranking for dissemination
// ---------------------------------------------------------------------

/// One configuration's outcome per ranking.
#[derive(Debug, Serialize)]
pub struct RankRow {
    /// Fraction disseminated.
    pub fraction: f64,
    /// (bytes×hops reduction, request interception) with traffic ranking.
    pub by_traffic: (f64, f64),
    /// Same with density ranking.
    pub by_density: (f64, f64),
}

/// Runs the ranking ablation.
pub fn exp_rank(scale: Scale, seed: u64) -> Result<Report> {
    let obs = specweb_core::obs::Obs::new();
    let topo = crate::workloads::topology();
    let trace = crate::workloads::bu_trace_with(scale, seed, Some(&obs))?;
    let sim = DisseminationSim::new(&trace, &topo)?.with_obs(&obs);

    let mut rows = Vec::new();
    for fraction in [0.04, 0.10, 0.25] {
        let run = |rank_for_traffic: bool| {
            sim.run(
                &DisseminationConfig {
                    fraction,
                    n_proxies: 9,
                    rank_for_traffic,
                    ..DisseminationConfig::default()
                },
                &[],
            )
        };
        let t = run(true)?;
        let d = run(false)?;
        rows.push(RankRow {
            fraction,
            by_traffic: (t.reduction, t.intercepted_fraction),
            by_density: (d.reduction, d.intercepted_fraction),
        });
    }

    let mut text = String::new();
    text.push_str("dissemination-candidate ranking: request count vs request density\n\n");
    text.push_str("fraction   traffic-ranked: saved/intercept   density-ranked: saved/intercept\n");
    for r in &rows {
        text.push_str(&format!(
            "{:>7.0}%   {:>21.1}% / {:>5.1}%   {:>21.1}% / {:>5.1}%\n",
            r.fraction * 100.0,
            r.by_traffic.0 * 100.0,
            r.by_traffic.1 * 100.0,
            r.by_density.0 * 100.0,
            r.by_density.1 * 100.0
        ));
    }
    text.push_str(
        "\nexpected: density ranking intercepts more *requests* per byte of\n\
         storage (it is the α-optimal packing); traffic ranking saves more\n\
         *bytes×hops* (value per byte of storage = request count). The two\n\
         objectives split exactly as the theory says.\n",
    );
    Ok(Report::new(
        "exp-rank",
        "ablation: dissemination ranking objective (traffic vs α)",
        text,
        &rows,
    )
    .with_metrics(obs.snapshot()))
}

// ---------------------------------------------------------------------
// EXP-TAILORED — shared vs geographically tailored replicas
// ---------------------------------------------------------------------

/// One fraction's paired outcome.
#[derive(Debug, Serialize)]
pub struct TailoredRow {
    /// Fraction disseminated.
    pub fraction: f64,
    /// Reduction with the same data at every proxy (the Fig. 3 setup).
    pub shared: f64,
    /// Reduction with per-proxy tailored replicas (footnote 5).
    pub tailored: f64,
}

/// Runs the tailoring ablation.
pub fn exp_tailored(scale: Scale, seed: u64) -> Result<Report> {
    let obs = specweb_core::obs::Obs::new();
    let topo = crate::workloads::topology();
    let trace = crate::workloads::bu_trace_with(scale, seed, Some(&obs))?;
    let sim = DisseminationSim::new(&trace, &topo)?.with_obs(&obs);

    let mut rows = Vec::new();
    for fraction in [0.02, 0.05, 0.10] {
        let run = |tailored: bool| {
            sim.run(
                &DisseminationConfig {
                    fraction,
                    n_proxies: 9,
                    tailored,
                    ..DisseminationConfig::default()
                },
                &[],
            )
        };
        rows.push(TailoredRow {
            fraction,
            shared: run(false)?.reduction,
            tailored: run(true)?.reduction,
        });
    }

    let mut text = String::new();
    text.push_str("same data to all proxies vs per-proxy tailored replicas\n\n");
    text.push_str("fraction     shared     tailored\n");
    for r in &rows {
        text.push_str(&format!(
            "{:>7.0}%   {:>7.1}%   {:>9.1}%\n",
            r.fraction * 100.0,
            r.shared * 100.0,
            r.tailored * 100.0
        ));
    }
    text.push_str(
        "\npaper (footnote 5): \"better results are attainable if the\n\
         dissemination strategy takes advantage of the geographic locality\n\
         of reference\" — tailoring matters most when storage is scarce.\n",
    );
    Ok(Report::new(
        "exp-tailored",
        "ablation: geographic tailoring of replicas (footnote 5)",
        text,
        &rows,
    )
    .with_metrics(obs.snapshot()))
}

// ---------------------------------------------------------------------
// EXP-SHED — §2.3 dynamic load shedding
// ---------------------------------------------------------------------

/// One cap's outcome.
#[derive(Debug, Serialize)]
pub struct ShedRow {
    /// Per-proxy daily request cap (`None` = uncapped).
    pub cap: Option<u64>,
    /// Requests shed upstream.
    pub shed: u64,
    /// Request interception achieved.
    pub intercepted: f64,
    /// Bytes×hops reduction achieved.
    pub reduction: f64,
}

/// Runs the shedding sweep.
pub fn exp_shed(scale: Scale, seed: u64) -> Result<Report> {
    let obs = specweb_core::obs::Obs::new();
    let topo = crate::workloads::topology();
    let trace = crate::workloads::bu_trace_with(scale, seed, Some(&obs))?;
    let sim = DisseminationSim::new(&trace, &topo)?.with_obs(&obs);

    let caps: &[Option<u64>] = match scale {
        Scale::Full => &[None, Some(2_000), Some(500), Some(125), Some(30)],
        Scale::Quick => &[None, Some(200), Some(20)],
    };
    let mut rows = Vec::new();
    for &cap in caps {
        let out = sim.run(
            &DisseminationConfig {
                proxy_daily_request_cap: cap,
                ..DisseminationConfig::default()
            },
            &[],
        )?;
        rows.push(ShedRow {
            cap,
            shed: out.shed_requests,
            intercepted: out.intercepted_fraction,
            reduction: out.reduction,
        });
    }

    let mut text = String::new();
    text.push_str("per-proxy daily request cap (∞ → tight), 4 proxies, top 10%\n\n");
    text.push_str("      cap      shed    intercept    saved\n");
    for r in &rows {
        let cap = r
            .cap
            .map(|c| c.to_string())
            .unwrap_or_else(|| "∞".to_string());
        text.push_str(&format!(
            "{:>9}  {:>8}   {:>7.1}%   {:>6.1}%\n",
            cap,
            r.shed,
            r.intercepted * 100.0,
            r.reduction * 100.0
        ));
    }
    text.push_str(
        "\n§2.3: an overloaded proxy pushes requests back toward the origin\n\
         (smaller effective B₀) — savings degrade gracefully, never below\n\
         the no-dissemination baseline.\n",
    );
    // Shedding is this experiment's subject, so `dissem.shed_requests`
    // being nonzero here is expected — CI's shed gate exempts exp-shed
    // and exp-hier for exactly that reason.
    Ok(Report::new(
        "exp-shed",
        "§2.3 dynamic load shedding under proxy request caps",
        text,
        &rows,
    )
    .with_metrics(obs.snapshot()))
}

// ---------------------------------------------------------------------
// EXP-HIER — multi-level dissemination under load
// ---------------------------------------------------------------------

/// Runs the hierarchy comparison.
pub fn exp_hier(scale: Scale, seed: u64) -> Result<Report> {
    let obs = specweb_core::obs::Obs::new();
    let topo = crate::workloads::topology();
    let trace = crate::workloads::bu_trace_with(scale, seed, Some(&obs))?;
    let sim = DisseminationSim::new(&trace, &topo)?.with_obs(&obs);
    let cap = match scale {
        Scale::Full => 400,
        Scale::Quick => 40,
    };
    let rows = hierarchy::compare_levels(
        &sim,
        &topo,
        &DisseminationConfig {
            fraction: 0.10,
            ..DisseminationConfig::default()
        },
        3,
        cap,
    )?;

    let mut text = String::new();
    text.push_str(&format!(
        "proxy levels under a per-proxy cap of {cap} requests/day\n\n"
    ));
    text.push_str("levels  proxies      shed    intercept    saved\n");
    for r in &rows {
        text.push_str(&format!(
            "{:>6}  {:>7}  {:>8}   {:>7.1}%   {:>6.1}%\n",
            r.levels,
            r.n_proxies,
            r.shed_requests,
            r.intercepted * 100.0,
            r.reduction * 100.0
        ));
    }
    text.push_str(
        "\n§2.3: one heavily-loaded proxy level sheds; continuing the\n\
         dissemination \"for another level, and so on\" spreads the load\n\
         and restores (and improves) the savings.\n",
    );
    Ok(Report::new(
        "exp-hier",
        "§2.3 multi-level dissemination dissolves the proxy bottleneck",
        text,
        &rows,
    )
    .with_metrics(obs.snapshot()))
}

// ---------------------------------------------------------------------
// EXP-ALLOC — optimizer vs baselines on mined profiles
// ---------------------------------------------------------------------

/// The comparison result.
#[derive(Debug, Serialize)]
pub struct AllocResult {
    /// Predicted α per strategy at each budget (KiB).
    pub rows: Vec<(u64, f64, f64, f64, f64)>,
}

/// Runs the allocation comparison on profiles mined from a multi-server
/// cluster trace.
pub fn exp_alloc(scale: Scale, seed: u64) -> Result<Report> {
    use specweb_trace::generator::{TraceConfig, TraceGenerator};
    let topo = crate::workloads::topology();
    let n_servers = 8usize;
    let mut tc = TraceConfig::cluster(seed, n_servers);
    if scale == Scale::Quick {
        tc.duration_days = 10;
        tc.sessions_per_day = 80;
        tc.site.n_pages = 60;
        tc.clients.n_clients = 300;
    }
    let days = tc.duration_days;
    let trace = TraceGenerator::new(tc)?.generate(&topo)?;

    let servers: Vec<ServerId> = (0..n_servers).map(ServerId::from).collect();
    let profiles = ServerProfile::from_trace_many(&trace, &servers, days)?;
    let models: Vec<ServerModel> = profiles
        .iter()
        .map(|p| ServerModel {
            lambda: p.lambda,
            demand: p.remote_bytes_per_day,
        })
        .collect();
    let profile_refs: Vec<&ServerProfile> = profiles.iter().collect();

    let budgets: &[u64] = &[64, 128, 256, 512, 1024];
    let mut rows = Vec::new();
    let mut text = String::new();
    text.push_str(&format!(
        "{n_servers}-server cluster, profiles mined from {} accesses\n\n",
        trace.len()
    ));
    text.push_str("   B₀      optimal   proportional   uniform   empirical-greedy\n");
    for &kib in budgets {
        let b0 = Bytes::from_kib(kib);
        let opt = optimize(&models, b0)?;
        let pro = allocate_proportional(&models, b0)?;
        let uni = allocate_uniform(&models, b0)?;
        let (emp, _) = optimize_empirical(&profile_refs, b0)?;
        rows.push((kib, opt.alpha, pro.alpha, uni.alpha, emp.alpha));
        text.push_str(&format!(
            "{:>5}K   {:>7.1}%   {:>11.1}%   {:>7.1}%   {:>15.1}%\n",
            kib,
            opt.alpha * 100.0,
            pro.alpha * 100.0,
            uni.alpha * 100.0,
            emp.alpha * 100.0
        ));
    }
    text.push_str(
        "\nthe closed form (exponential model) beats the uniform and\n\
         proportional baselines; the empirical greedy — which sees the\n\
         true hit curves, not a fitted exponential — bounds what any\n\
         model-based allocation can achieve.\n",
    );
    Ok(Report::new(
        "exp-alloc",
        "ablation: storage allocation strategies on mined profiles",
        text,
        &AllocResult { rows },
    ))
}

// ---------------------------------------------------------------------
// EXP-AGING — hard window vs exponential aging under drift
// ---------------------------------------------------------------------

/// One estimator variant's outcome.
#[derive(Debug, Serialize)]
pub struct AgingRow {
    /// Variant label.
    pub variant: String,
    /// Load reduction.
    pub load_reduction_pct: f64,
    /// Traffic increase.
    pub traffic_pct: f64,
}

/// Runs the aging ablation on the drifting workload.
pub fn exp_aging(scale: Scale, seed: u64) -> Result<Report> {
    let obs = specweb_core::obs::Obs::new();
    let topo = crate::workloads::topology();
    let trace = crate::workloads::drift_trace_with(scale, seed, Some(&obs))?;
    let sim = SpecSim::new(&trace, &topo).with_obs(&obs);
    let total_days = trace.duration.as_millis() / 86_400_000;

    let history = match scale {
        Scale::Full => 30,
        Scale::Quick => 8,
    };
    let variants: Vec<(String, Option<f64>)> = vec![
        (format!("hard {history}-day window"), None),
        ("aging decay 0.9/day".into(), Some(0.9)),
        ("aging decay 0.7/day".into(), Some(0.7)),
    ];

    // One baseline for all estimator variants (the demand replay never
    // reads the estimator).
    let baseline = {
        let mut c = SpecConfig::baseline(0.3);
        c.warmup_days = crate::workloads::warmup_days(scale);
        sim.baseline_totals(&c)?
    };

    let mut rows = Vec::new();
    for (label, decay) in variants {
        let mut cfg = SpecConfig::baseline(0.3);
        cfg.estimator.history_days = history;
        cfg.estimator.aging_decay = decay;
        cfg.warmup_days = crate::workloads::warmup_days(scale);
        let store = MatrixStore::precompute(&cfg.estimator, &trace, total_days)?;
        store.record_truncation(&obs);
        let out = sim.run_with_store_and_baseline(&cfg, Some(&store), Some(&baseline))?;
        rows.push(AgingRow {
            variant: label,
            load_reduction_pct: out.ratios.server_load_reduction_pct(),
            traffic_pct: out.ratios.traffic_increase_pct(),
        });
    }

    let mut text = String::new();
    text.push_str("drifting site; estimator history variants at T_p = 0.3\n\n");
    text.push_str("variant                     load      traffic\n");
    for r in &rows {
        text.push_str(&format!(
            "{:<24} {:>8}  {:>9}\n",
            r.variant,
            pct(-r.load_reduction_pct),
            pct(r.traffic_pct)
        ));
    }
    text.push_str(
        "\n§3.4 envisions \"an aging mechanism to phase-out dependencies\n\
         exhibited in older traces\"; exponential decay weights recent days\n\
         without discarding history outright.\n",
    );
    Ok(Report::new(
        "exp-aging",
        "ablation: hard history window vs exponential aging (§3.4)",
        text,
        &rows,
    )
    .with_metrics(obs.snapshot()))
}

// ---------------------------------------------------------------------
// EXP-DIGEST — exact vs Bloom cooperative digests
// ---------------------------------------------------------------------

/// One cache-size point.
#[derive(Debug, Serialize)]
pub struct DigestRow {
    /// Number of cached documents in the digest.
    pub cached_docs: usize,
    /// Exact digest wire size (bytes).
    pub exact_bytes: u64,
    /// Bloom digest wire size (bytes).
    pub bloom_bytes: u64,
    /// Bloom false-positive rate measured against 20k absent ids.
    pub bloom_fp_rate: f64,
}

/// Runs the digest comparison (analytic; no simulation needed).
pub fn exp_digest(_scale: Scale, _seed: u64) -> Result<Report> {
    use specweb_core::ids::DocId;
    let mut rows = Vec::new();
    for cached in [50usize, 500, 5_000, 50_000] {
        let exact = ExactDigest::from_docs((0..cached as u32).map(DocId::new));
        let bloom = BloomDigest::from_docs((0..cached as u32).map(DocId::new), cached, 0.01);
        let fps = (cached as u32..cached as u32 + 20_000)
            .filter(|&x| bloom.maybe_contains(DocId::new(x)))
            .count();
        rows.push(DigestRow {
            cached_docs: cached,
            exact_bytes: exact.wire_size().get(),
            bloom_bytes: bloom.wire_size().get(),
            bloom_fp_rate: fps as f64 / 20_000.0,
        });
    }

    let mut text = String::new();
    text.push_str("piggybacked cache digests: exact id list vs Bloom filter\n\n");
    text.push_str("cached docs   exact bytes   bloom bytes   bloom FP rate\n");
    for r in &rows {
        text.push_str(&format!(
            "{:>11}   {:>11}   {:>11}   {:>12.3}%\n",
            r.cached_docs,
            r.exact_bytes,
            r.bloom_bytes,
            r.bloom_fp_rate * 100.0
        ));
    }
    text.push_str(
        "\nthe paper's cooperative clients piggyback \"a list of document\n\
         IDs\"; a Bloom digest carries the same suppression power in ~1.2\n\
         bytes per document with a bounded false-positive rate (a false\n\
         positive merely skips one useful push — safe, never wasteful).\n",
    );
    Ok(Report::new(
        "exp-digest",
        "ablation: exact vs Bloom cooperative cache digests",
        text,
        &rows,
    ))
}

// ---------------------------------------------------------------------
// EXP-QUEUE — what load reduction means at the server (M/G/1)
// ---------------------------------------------------------------------

/// One operating point.
#[derive(Debug, Serialize)]
pub struct QueueRow {
    /// The threshold used.
    pub tp: f64,
    /// Measured server-load reduction from the simulator.
    pub load_reduction_pct: f64,
    /// Server utilization without speculation.
    pub rho_before: f64,
    /// Server utilization with speculation.
    pub rho_after: f64,
    /// Mean response time without speculation, seconds (`None` =
    /// saturated).
    pub response_before: Option<f64>,
    /// Mean response time with speculation, seconds.
    pub response_after: Option<f64>,
}

/// Couples the simulator's measured load reductions to an M/G/1 server
/// at a peak-hour operating point: the paper's "−35% server load"
/// rendered as response time.
pub fn exp_queue(scale: Scale, seed: u64) -> Result<Report> {
    let obs = specweb_core::obs::Obs::new();
    let topo = crate::workloads::topology();
    let trace = crate::workloads::bu_trace_with(scale, seed, Some(&obs))?;
    let sim = SpecSim::new(&trace, &topo).with_obs(&obs);
    let total_days = trace.duration.as_millis() / 86_400_000;

    let mut cfg = SpecConfig::baseline(0.5);
    cfg.estimator.history_days = crate::workloads::history_days(scale);
    cfg.warmup_days = crate::workloads::warmup_days(scale);
    let store = MatrixStore::precompute(&cfg.estimator, &trace, total_days)?;
    store.record_truncation(&obs);

    // Peak-hour operating point: a 1995 httpd (capacity 20 req/s at
    // 50 ms mean service) running hot at ρ = 0.95.
    let server = Mg1::httpd_1995();
    let lambda = 0.95 / server.mean_service_secs;

    let tps: &[f64] = match scale {
        Scale::Full => &[0.9, 0.5, 0.3, 0.15],
        Scale::Quick => &[0.5, 0.15],
    };
    // One baseline serves the whole T_p sweep.
    let baseline = sim.baseline_totals(&cfg)?;

    let mut rows = Vec::new();
    for &tp in tps {
        cfg.policy = Policy::Threshold { tp };
        let out = sim.run_with_store_and_baseline(&cfg, Some(&store), Some(&baseline))?;
        let reduction = out.ratios.server_load_reduction_pct();
        let relief = load_relief(&server, lambda, reduction / 100.0)?;
        rows.push(QueueRow {
            tp,
            load_reduction_pct: reduction,
            rho_before: relief.rho_before,
            rho_after: relief.rho_after,
            response_before: relief.response_before,
            response_after: relief.response_after,
        });
    }

    let mut text = String::new();
    text.push_str(&format!(
        "M/G/1 httpd (50 ms mean service, c²=4) at peak-hour λ = {lambda:.1} req/s (ρ = 0.95)

"
    ));
    text.push_str(
        "  T_p    load-red      ρ before→after    response before→after
",
    );
    for r in &rows {
        let fmt_t = |t: Option<f64>| match t {
            Some(x) => format!("{:.0} ms", x * 1000.0),
            None => "saturated".to_string(),
        };
        text.push_str(&format!(
            "{:>5.2}   {:>7.1}%    {:>6.2} → {:>5.2}    {:>9} → {}
",
            r.tp,
            r.load_reduction_pct,
            r.rho_before,
            r.rho_after,
            fmt_t(r.response_before),
            fmt_t(r.response_after)
        ));
    }
    text.push_str(
        "\nthe paper's ServCost : CommCost = 10,000 : 1 is queueing in\n\
         disguise: near saturation, shaving a third of the requests cuts\n\
         response time by an order of magnitude.\n",
    );
    Ok(Report::new(
        "exp-queue",
        "extension: server load reduction as M/G/1 response time",
        text,
        &rows,
    )
    .with_metrics(obs.snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Scale = Scale::Quick;

    #[test]
    fn closure_reaches_further_than_direct() {
        let r = exp_closure(S, 30).unwrap();
        // The safety-valve count is always reported, even when zero.
        assert!(r.json["truncated_rows"].as_u64().is_some());
        assert!(r.text.contains("safety valve") || r.text.contains("truncated"));
        for row in r.json["rows"].as_array().unwrap() {
            let c_load = row["closure"][1].as_f64().unwrap();
            let d_load = row["direct"][1].as_f64().unwrap();
            let c_traffic = row["closure"][0].as_f64().unwrap();
            let d_traffic = row["direct"][0].as_f64().unwrap();
            // P* is a superset of P above any threshold: at least as
            // many pushes, so at least as much load reduction and at
            // least as much traffic.
            assert!(c_load >= d_load - 0.5, "closure lost to direct: {row}");
            assert!(c_traffic >= d_traffic - 0.5);
        }
    }

    #[test]
    fn ranking_objectives_split_as_predicted() {
        let r = exp_rank(S, 31).unwrap();
        let rows = r.json.as_array().unwrap();
        // Density ranking never intercepts fewer requests; traffic
        // ranking never saves fewer bytes×hops (within noise).
        for row in rows {
            let (t_saved, t_int) = (
                row["by_traffic"][0].as_f64().unwrap(),
                row["by_traffic"][1].as_f64().unwrap(),
            );
            let (d_saved, d_int) = (
                row["by_density"][0].as_f64().unwrap(),
                row["by_density"][1].as_f64().unwrap(),
            );
            assert!(
                d_int >= t_int - 0.02,
                "density should win interception: {row}"
            );
            assert!(
                t_saved >= d_saved - 0.02,
                "traffic should win savings: {row}"
            );
        }
    }

    #[test]
    fn tailoring_helps_or_ties() {
        // At Quick scale a proxy subtree sees few accesses per
        // server, so tailored rankings carry sampling noise; assert
        // ties-within-noise rather than strict improvement.
        let r = exp_tailored(S, 32).unwrap();
        for row in r.json.as_array().unwrap() {
            let shared = row["shared"].as_f64().unwrap();
            let tailored = row["tailored"].as_f64().unwrap();
            assert!(
                tailored >= shared - 0.03,
                "tailoring should not hurt: {row}"
            );
        }
    }

    #[test]
    fn shedding_degrades_gracefully() {
        let r = exp_shed(S, 33).unwrap();
        let rows = r.json.as_array().unwrap();
        // Tighter caps shed more and save less, but never negative.
        let mut prev_shed = 0u64;
        let mut prev_saved = f64::INFINITY;
        for row in rows {
            let shed = row["shed"].as_u64().unwrap();
            let saved = row["reduction"].as_f64().unwrap();
            assert!(shed >= prev_shed, "shedding must grow as caps tighten");
            assert!(saved <= prev_saved + 0.01);
            assert!(saved >= -1e-9, "never below the baseline: {row}");
            prev_shed = shed;
            prev_saved = saved;
        }
        // The uncapped row sheds nothing.
        assert_eq!(rows[0]["shed"], 0);
    }

    #[test]
    fn hierarchy_absorbs_load() {
        let r = exp_hier(S, 34).unwrap();
        let rows = r.json.as_array().unwrap();
        assert_eq!(rows.len(), 3);
        let shed1 = rows[0]["shed_requests"].as_u64().unwrap();
        let shed3 = rows[2]["shed_requests"].as_u64().unwrap();
        assert!(shed3 <= shed1);
        let red1 = rows[0]["reduction"].as_f64().unwrap();
        let red3 = rows[2]["reduction"].as_f64().unwrap();
        assert!(red3 >= red1 - 0.02);
    }

    #[test]
    fn optimizer_beats_baselines_on_mined_profiles() {
        let r = exp_alloc(S, 35).unwrap();
        for row in r.json["rows"].as_array().unwrap() {
            let opt = row[1].as_f64().unwrap();
            let pro = row[2].as_f64().unwrap();
            let uni = row[3].as_f64().unwrap();
            let emp = row[4].as_f64().unwrap();
            assert!(opt >= uni - 0.01, "optimal lost to uniform: {row}");
            assert!(opt >= pro - 0.05, "optimal far below proportional: {row}");
            // The empirical greedy sees the true curves — it should not
            // be far below the model-based optimum (and usually above).
            assert!(
                emp >= opt - 0.10,
                "empirical greedy suspiciously weak: {row}"
            );
        }
    }

    #[test]
    fn aging_variants_all_work() {
        let r = exp_aging(S, 36).unwrap();
        let rows = r.json.as_array().unwrap();
        assert_eq!(rows.len(), 3);
        for row in rows {
            let load = row["load_reduction_pct"].as_f64().unwrap();
            assert!(load > 0.0, "variant should still speculate usefully: {row}");
        }
    }

    #[test]
    fn queue_relief_improves_response_time() {
        let r = exp_queue(S, 37).unwrap();
        let rows = r.json.as_array().unwrap();
        assert!(!rows.is_empty());
        for row in rows {
            let before = row["response_before"].as_f64();
            let after = row["response_after"].as_f64().unwrap();
            // ρ = 0.95 before: finite but slow; after: strictly faster.
            if let Some(b) = before {
                assert!(after < b, "relief must speed the server: {row}");
            }
            assert!(row["rho_after"].as_f64().unwrap() < 0.95);
        }
        // More aggressive speculation relieves more.
        let first = rows[0]["rho_after"].as_f64().unwrap();
        let last = rows[rows.len() - 1]["rho_after"].as_f64().unwrap();
        assert!(last <= first + 1e-9);
    }

    #[test]
    fn bloom_digest_is_compact_and_accurate() {
        let r = exp_digest(S, 0).unwrap();
        for row in r.json.as_array().unwrap() {
            let exact = row["exact_bytes"].as_u64().unwrap();
            let bloom = row["bloom_bytes"].as_u64().unwrap();
            let fp = row["bloom_fp_rate"].as_f64().unwrap();
            if row["cached_docs"].as_u64().unwrap() >= 500 {
                assert!(bloom < exact, "bloom should be smaller: {row}");
            }
            assert!(fp < 0.05, "false-positive rate too high: {row}");
        }
    }
}
