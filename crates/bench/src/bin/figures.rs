//! Regenerates every figure and table of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p specweb-bench --bin figures -- all
//! cargo run --release -p specweb-bench --bin figures -- fig5 fig6
//! cargo run --release -p specweb-bench --bin figures -- --quick all
//! cargo run --release -p specweb-bench --bin figures -- --seed 7 --jobs 4 fig3
//! cargo run --release -p specweb-bench --bin figures -- --report
//! ```
//!
//! Text and JSON land in `results/`, plus one `manifest_<id>.json` per
//! experiment (seed, scale, metric snapshot, timing, git describe), a
//! run-level `manifest_run.json` with the process-wide counters, and a
//! `bench_timings.json` with per-experiment wall-clock times.
//! Experiments fan out on `--jobs` workers (default: `SPECWEB_JOBS` or
//! the core count); the result files and every manifest's
//! `deterministic` section are byte-identical for every worker count —
//! only `bench_timings.json` and the manifests' `nondeterministic`
//! sections vary.
//!
//! Every run also regenerates `<out>/REPORT.md`, a deterministic-only
//! markdown summary of the manifests (no jobs/git/timing, so it joins
//! the byte-identical set). `figures --report` re-reads the manifests
//! from `--out`, prints the per-subsystem summary, and rewrites
//! `REPORT.md` without re-running anything.

use std::time::Instant;

use serde::Serialize;
use specweb_bench::{ablations, cli, exps, fig1, fig2, fig3, fig4, fig5, perf, Report, Scale};
use specweb_core::log;
use specweb_core::obs::{self, Level, MetricSnapshot, RunManifest};

/// Wall-clock accounting for one run, written to `bench_timings.json`.
/// This file and the manifests' `nondeterministic` sections are the
/// only outputs that are *not* deterministic.
#[derive(Debug, Serialize)]
struct Timings {
    /// Worker count used.
    jobs: usize,
    /// `full` or `quick`, with a `-xN` suffix when `--scale N` > 1.
    scale: String,
    /// Population multiplier (`--scale`).
    scale_factor: usize,
    /// Master seed.
    seed: u64,
    /// End-to-end wall clock, seconds.
    total_seconds: f64,
    /// Per-experiment wall clock, in request order.
    experiments: Vec<ExperimentTiming>,
}

/// One experiment's wall clock.
#[derive(Debug, Serialize)]
struct ExperimentTiming {
    /// Experiment id.
    id: String,
    /// Wall clock, seconds.
    seconds: f64,
}

fn main() {
    // Progress lines (level Info) print by default for the interactive
    // binary; SPECWEB_LOG still overrides in either direction.
    obs::set_default_level(Level::Info);

    let args = cli::parse(std::env::args().skip(1)).unwrap_or_else(|e| die(&e));
    if args.help {
        println!("{}", cli::usage());
        return;
    }
    if args.report {
        match load_manifests(&args.out_dir) {
            Ok(manifests) => {
                println!("{}", obs::render_report(&manifests));
                write_markdown_report(&args.out_dir, &manifests);
            }
            Err(e) => die(&e),
        }
        return;
    }
    let cli::Args {
        scale,
        seed,
        out_dir,
        jobs,
        scale_factor,
        wanted,
        check_perf,
        ..
    } = args;

    // Pin the process-wide default so every parallel site in the
    // workspace — experiment fan-out, closure rows, profile mining —
    // honors --jobs. `--jobs 1` makes the entire process serial.
    let jobs = jobs.unwrap_or_else(specweb_core::par::default_jobs);
    specweb_core::par::set_default_jobs(jobs);
    // Pin the population multiplier before any workload is built.
    specweb_bench::workloads::set_scale_factor(scale_factor);

    let t0 = Instant::now();
    let scale_name: String = {
        let base = match scale {
            Scale::Full => "full",
            Scale::Quick => "quick",
        };
        if scale_factor > 1 {
            format!("{base}-x{scale_factor}")
        } else {
            base.to_string()
        }
    };
    let scale_name = scale_name.as_str();
    let git = obs::git_describe();

    // fig5 and fig6 share one sweep; run it once if both are requested.
    // (cli::parse deduplicates ids, so each appears at most once.)
    let both_56 = wanted.iter().any(|w| w == "fig5") && wanted.iter().any(|w| w == "fig6");
    let (shared_sweep, sweep_seconds) = if both_56 {
        log!(Info, "figures", "running fig5/fig6 shared sweep…");
        let started = Instant::now();
        let sweep_obs = obs::Obs::new();
        let sweep = fig5::sweep_replicated(scale, seed, Some(&sweep_obs))
            .unwrap_or_else(|e| die(&format!("sweep failed: {e}")));
        (
            Some((sweep, sweep_obs.snapshot())),
            Some(started.elapsed().as_secs_f64()),
        )
    } else {
        (None, None)
    };

    // Experiments are independent deterministic replays: fan them out
    // and print in request order. Workers return Result and the exit
    // happens after the pool joins (G5: process::exit inside a worker
    // would race the other workers' output, and which error won would
    // depend on completion order); try_map_indexed surfaces the first
    // failure in *request* order, so a failed experiment can neither be
    // silently dropped nor report nondeterministically. Each experiment
    // runs under its own span-tree profiler rooted at its id; inner
    // pools adopt the context, so simulator phases nest under it.
    let pool = specweb_core::par::Pool::new(jobs.min(wanted.len().max(1)));
    let results: Vec<(Report, f64, String)> = pool
        .try_map_indexed(&wanted, |_, id| {
            let started = Instant::now();
            let profiler = obs::Profiler::new();
            let report = {
                let _ctx = profiler.install();
                let _root = obs::frame(id);
                run_one(id, scale, seed, &shared_sweep).map_err(|e| format!("{id} failed: {e}"))?
            };
            Ok((
                report,
                started.elapsed().as_secs_f64(),
                profiler.collapsed(),
            ))
        })
        .unwrap_or_else(|e: String| die(&e));

    // lint:allow(W3): one slot per already-collected experiment result
    let mut experiments = Vec::with_capacity(results.len() + 1);
    if let Some(seconds) = sweep_seconds {
        // The shared sweep ran once up front, outside any single
        // experiment's clock; account for it explicitly.
        experiments.push(ExperimentTiming {
            id: "fig5/fig6-shared-sweep".into(),
            seconds,
        });
    }
    for (id, (report, secs, collapsed)) in wanted.iter().zip(&results) {
        println!("{}", report.render());
        report
            .write_to(&out_dir)
            .unwrap_or_else(|e| die(&format!("writing {id}: {e}")));
        // Collapsed-stack profile (wall-clock channel: excluded from the
        // CI byte-diff, like bench_timings.json).
        let profile_path = out_dir.join(format!("profile_{id}.txt"));
        std::fs::write(&profile_path, collapsed)
            .unwrap_or_else(|e| die(&format!("writing {}: {e}", profile_path.display())));
        // Record the process-wide --jobs value, not the fan-out pool's
        // width (which is capped at the experiment count): closure rows
        // and profile mining inside one experiment still parallelize.
        let manifest = RunManifest::new(id, seed, scale_name, report.metrics.clone())
            .with_run_info(jobs, &git)
            .with_timing("run", *secs);
        write_manifest(&out_dir, &manifest);
        log!(
            Info,
            "figures",
            "{id} done in {secs:.1}s (→ {}/{id}.txt)",
            out_dir.display()
        );
        experiments.push(ExperimentTiming {
            id: id.clone(),
            seconds: *secs,
        });
    }

    let total_seconds = t0.elapsed().as_secs_f64();

    // Run-level manifest: the process-wide registry (pool task totals,
    // trace-generation volume, allocator iterations, any serve counters)
    // plus end-to-end timing.
    let mut run_manifest = RunManifest::new("run", seed, scale_name, obs::global().snapshot())
        .with_run_info(jobs, &git)
        .with_dropped_events(obs::global().events.dropped())
        .with_timing("total", total_seconds);
    if let Some(seconds) = sweep_seconds {
        run_manifest = run_manifest.with_timing("fig5/fig6-shared-sweep", seconds);
    }
    write_manifest(&out_dir, &run_manifest);

    // REPORT.md rides along with every run: re-read the full manifest
    // set (this run's plus any earlier experiments still in --out) so
    // the report always reflects everything in the directory.
    match load_manifests(&out_dir) {
        Ok(manifests) => write_markdown_report(&out_dir, &manifests),
        Err(e) => die(&e),
    }

    let timings = Timings {
        jobs: pool.jobs(),
        scale: scale_name.into(),
        scale_factor,
        seed,
        total_seconds,
        experiments,
    };
    let timings_path = out_dir.join("bench_timings.json");
    std::fs::write(
        &timings_path,
        serde_json::to_string_pretty(&timings).expect("timings serialize"),
    )
    .unwrap_or_else(|e| die(&format!("writing {}: {e}", timings_path.display())));

    // Perf trajectory: append this run to the committed wall-clock
    // ledger and (under --check-perf) gate on regressions against the
    // most recent comparable entry. Wall-clock channel — excluded from
    // the determinism byte-diffs, like bench_timings.json.
    let entry = perf::TrajectoryEntry {
        git: git.clone(),
        jobs: jobs as u64,
        scale: scale_name.into(),
        scale_factor: scale_factor as u64,
        seed,
        total_seconds,
        experiments: timings
            .experiments
            .iter()
            .map(|e| perf::PhaseTiming {
                id: e.id.clone(),
                seconds: e.seconds,
            })
            .collect(),
    };
    let traj_path = out_dir.join("perf_trajectory.json");
    let mut trajectory = match std::fs::read_to_string(&traj_path) {
        Ok(text) => perf::Trajectory::from_json(&text)
            .unwrap_or_else(|e| die(&format!("{}: {e}", traj_path.display()))),
        Err(_) => perf::Trajectory::new(),
    };
    let regressions = perf::check_against(&trajectory.entries, &entry, &perf::Tolerance::default());
    trajectory.entries.push(entry);
    std::fs::write(&traj_path, trajectory.to_json())
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", traj_path.display())));
    for r in &regressions {
        log!(Warn, "figures", "perf regression: {r}");
    }

    log!(
        Info,
        "figures",
        "all done in {total_seconds:.1}s ({} workers; timings → {})",
        pool.jobs(),
        timings_path.display()
    );
    if check_perf && !regressions.is_empty() {
        die(&format!(
            "--check-perf: {} phase(s) regressed beyond tolerance (see warnings above)",
            regressions.len()
        ));
    }
}

/// Writes `manifest_<id>.json` under `dir`.
fn write_manifest(dir: &std::path::Path, manifest: &RunManifest) {
    let path = dir.join(manifest.file_name());
    std::fs::create_dir_all(dir)
        .and_then(|()| {
            std::fs::write(
                &path,
                serde_json::to_string_pretty(manifest).expect("manifests serialize"),
            )
        })
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
}

/// Writes the deterministic-only markdown report to `<dir>/REPORT.md`.
fn write_markdown_report(dir: &std::path::Path, manifests: &[RunManifest]) {
    let path = dir.join("REPORT.md");
    std::fs::write(&path, obs::render_report_markdown(manifests))
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
    log!(Info, "figures", "report → {}", path.display());
}

/// Loads every `manifest_*.json` in `dir`, sorted by file name so the
/// manifest order (and therefore any rendered report) is stable.
fn load_manifests(dir: &std::path::Path) -> Result<Vec<RunManifest>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| {
        format!(
            "reading {}: {e} (run some experiments first)",
            dir.display()
        )
    })?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("manifest_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!(
            "no manifest_*.json in {} — run `figures <ids…|all>` first",
            dir.display()
        ));
    }
    // lint:allow(W3): one slot per manifest path already listed from disk
    let mut manifests = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let manifest: RunManifest =
            serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
        manifests.push(manifest);
    }
    Ok(manifests)
}

/// Dispatches one experiment id.
fn run_one(
    id: &str,
    scale: Scale,
    seed: u64,
    shared_sweep: &Option<(fig5::Replicated, MetricSnapshot)>,
) -> specweb_core::Result<Report> {
    match id {
        "fig1" => fig1::run(scale, seed),
        "fig2" => fig2::run(scale, seed),
        "fig3" => fig3::run(scale, seed),
        "fig4" => fig4::run(scale, seed),
        "fig5" => match shared_sweep {
            Some((s, m)) => Ok(fig5::report(s).with_metrics(m.clone())),
            None => fig5::run(scale, seed),
        },
        "fig6" => match shared_sweep {
            Some((s, m)) => Ok(fig5::report_fig6(s).with_metrics(m.clone())),
            None => fig5::run_fig6(scale, seed),
        },
        "tab1" => exps::tab1(scale, seed),
        "exp-upd" => exps::exp_upd(scale, seed),
        "exp-size" => exps::exp_size(scale, seed),
        "exp-cache" => exps::exp_cache(scale, seed),
        "exp-coop" => exps::exp_coop(scale, seed),
        "exp-pref" => exps::exp_pref(scale, seed),
        "exp-class" => exps::exp_class(scale, seed),
        "exp-sizing" => exps::exp_sizing(scale, seed),
        "exp-closure" => ablations::exp_closure(scale, seed),
        "exp-rank" => ablations::exp_rank(scale, seed),
        "exp-tailored" => ablations::exp_tailored(scale, seed),
        "exp-shed" => ablations::exp_shed(scale, seed),
        "exp-hier" => ablations::exp_hier(scale, seed),
        "exp-alloc" => ablations::exp_alloc(scale, seed),
        "exp-aging" => ablations::exp_aging(scale, seed),
        "exp-digest" => ablations::exp_digest(scale, seed),
        "exp-queue" => ablations::exp_queue(scale, seed),
        // cli::parse validates ids against the same list, so this is
        // unreachable from the command line; an Err (not die()) keeps
        // this fn effect-free for the worker-closure fan-out (G5).
        other => Err(specweb_core::CoreError::invalid_config(
            "experiment",
            format!("unknown experiment `{other}`"),
        )),
    }
}

fn die(msg: &str) -> ! {
    log!(Error, "figures", "error: {msg}");
    std::process::exit(1)
}
