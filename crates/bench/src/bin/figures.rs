//! Regenerates every figure and table of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p specweb-bench --bin figures -- all
//! cargo run --release -p specweb-bench --bin figures -- fig5 fig6
//! cargo run --release -p specweb-bench --bin figures -- --quick all
//! cargo run --release -p specweb-bench --bin figures -- --seed 7 fig3
//! ```
//!
//! Text and JSON land in `results/`.

use std::path::PathBuf;
use std::time::Instant;

use specweb_bench::{ablations, exps, fig1, fig2, fig3, fig4, fig5, Report, Scale};

const ALL: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "tab1",
    "exp-upd",
    "exp-size",
    "exp-cache",
    "exp-coop",
    "exp-pref",
    "exp-class",
    "exp-sizing",
    "exp-closure",
    "exp-rank",
    "exp-tailored",
    "exp-shed",
    "exp-hier",
    "exp-alloc",
    "exp-aging",
    "exp-digest",
    "exp-queue",
];

fn main() {
    let mut scale = Scale::Full;
    let mut seed = 1996u64;
    let mut out_dir = PathBuf::from("results");
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--help" | "-h" => {
                println!("usage: figures [--quick] [--seed N] [--out DIR] <ids…|all>");
                println!("ids: {}", ALL.join(" "));
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = ALL.iter().map(|s| s.to_string()).collect();
    }

    // fig5 and fig6 share one sweep; run it once if both are requested.
    let both_56 = wanted.iter().any(|w| w == "fig5") && wanted.iter().any(|w| w == "fig6");
    let shared_sweep = if both_56 {
        eprintln!("[figures] running fig5/fig6 shared sweep…");
        Some(fig5::sweep(scale, seed).unwrap_or_else(|e| die(&format!("sweep failed: {e}"))))
    } else {
        None
    };

    // Experiments are independent deterministic replays: run them on a
    // small thread pool and print in request order.
    let t0 = Instant::now();
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(4)
        .min(wanted.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<std::sync::Mutex<Option<(Report, f64)>>> = Vec::new();
    slots.resize_with(wanted.len(), || std::sync::Mutex::new(None));

    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= wanted.len() {
                    break;
                }
                let id = &wanted[idx];
                let started = Instant::now();
                let report = run_one(id, scale, seed, &shared_sweep)
                    .unwrap_or_else(|e| die(&format!("{id} failed: {e}")));
                *slots[idx].lock().expect("no poisoning") =
                    Some((report, started.elapsed().as_secs_f64()));
            });
        }
    });

    for (id, slot) in wanted.iter().zip(&slots) {
        let (report, secs) = slot
            .lock()
            .expect("no poisoning")
            .take()
            .unwrap_or_else(|| die(&format!("{id} produced no report")));
        println!("{}", report.render());
        report
            .write_to(&out_dir)
            .unwrap_or_else(|e| die(&format!("writing {id}: {e}")));
        eprintln!(
            "[figures] {id} done in {secs:.1}s (→ {}/{id}.txt)",
            out_dir.display()
        );
    }
    eprintln!(
        "[figures] all done in {:.1}s ({n_workers} workers)",
        t0.elapsed().as_secs_f64()
    );
}

/// Dispatches one experiment id.
fn run_one(
    id: &str,
    scale: Scale,
    seed: u64,
    shared_sweep: &Option<specweb_bench::fig5::Sweep>,
) -> specweb_core::Result<Report> {
    match id {
        "fig1" => fig1::run(scale, seed),
        "fig2" => fig2::run(scale, seed),
        "fig3" => fig3::run(scale, seed),
        "fig4" => fig4::run(scale, seed),
        "fig5" => match shared_sweep {
            Some(s) => Ok(fig5::report(s)),
            None => fig5::run(scale, seed),
        },
        "fig6" => match shared_sweep {
            Some(s) => Ok(fig5::report_fig6(s)),
            None => fig5::run_fig6(scale, seed),
        },
        "tab1" => exps::tab1(scale, seed),
        "exp-upd" => exps::exp_upd(scale, seed),
        "exp-size" => exps::exp_size(scale, seed),
        "exp-cache" => exps::exp_cache(scale, seed),
        "exp-coop" => exps::exp_coop(scale, seed),
        "exp-pref" => exps::exp_pref(scale, seed),
        "exp-class" => exps::exp_class(scale, seed),
        "exp-sizing" => exps::exp_sizing(scale, seed),
        "exp-closure" => ablations::exp_closure(scale, seed),
        "exp-rank" => ablations::exp_rank(scale, seed),
        "exp-tailored" => ablations::exp_tailored(scale, seed),
        "exp-shed" => ablations::exp_shed(scale, seed),
        "exp-hier" => ablations::exp_hier(scale, seed),
        "exp-alloc" => ablations::exp_alloc(scale, seed),
        "exp-aging" => ablations::exp_aging(scale, seed),
        "exp-digest" => ablations::exp_digest(scale, seed),
        "exp-queue" => ablations::exp_queue(scale, seed),
        other => {
            eprintln!(
                "[figures] unknown experiment `{other}` — known: {}",
                ALL.join(" ")
            );
            std::process::exit(2);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("[figures] error: {msg}");
    std::process::exit(1);
}
