//! Figure 2 — optimal storage allocation for equally popular servers.
//!
//! Analytic reproduction of the paper's Fig. 2: a cluster of `n = 10`
//! equally popular servers, nine of which share a rate `λ_i`; the tenth
//! server's rate `λ_j` sweeps across four decades. Two regimes are
//! plotted: *tight* storage (`B₀ = 1/λ_i`) and *lax* storage
//! (`B₀ = 10/λ_i`). The paper's qualitative claims, which the numbers
//! must reproduce:
//!
//! * with lax storage, servers with more uniform popularity (smaller
//!   `λ_j`) get more proxy space;
//! * with tight storage, intermediate `λ_j` is favored — a very uniform
//!   server is not worth covering at all when space is scarce.

use serde::Serialize;
use specweb_core::units::Bytes;
use specweb_core::Result;
use specweb_dissem::alloc::allocate_equal_demand;

use crate::{Report, Scale};

/// One sweep point.
#[derive(Debug, Serialize)]
pub struct Fig2Point {
    /// λ_j / λ_i ratio.
    pub lambda_ratio: f64,
    /// Optimal B_j (as a fraction of B₀) in the tight regime.
    pub tight_share: f64,
    /// Optimal B_j (as a fraction of B₀) in the lax regime.
    pub lax_share: f64,
}

/// Machine-readable result.
#[derive(Debug, Serialize)]
pub struct Fig2 {
    /// The fixed rate of the other nine servers.
    pub lambda_i: f64,
    /// The sweep.
    pub points: Vec<Fig2Point>,
}

/// Runs the experiment (purely analytic; scale is ignored).
pub fn run(_scale: Scale, _seed: u64) -> Result<Report> {
    let lambda_i = 1e-6;
    let n = 10usize;
    let tight = Bytes::new((1.0 / lambda_i) as u64);
    let lax = Bytes::new((10.0 / lambda_i) as u64);

    let mut points = Vec::new();
    let mut ratio = 0.01;
    while ratio <= 100.0 + 1e-9 {
        let lambda_j = lambda_i * ratio;
        let mut lambdas = vec![lambda_i; n];
        lambdas[0] = lambda_j;
        // The closed form is unconstrained: extreme λ_j can drive B_j
        // negative, which the KKT solution clips to zero (see alloc::
        // optimize). Fig. 2 plots the clipped value.
        let bt = allocate_equal_demand(&lambdas, tight)?[0].max(0.0);
        let bl = allocate_equal_demand(&lambdas, lax)?[0].max(0.0);
        points.push(Fig2Point {
            lambda_ratio: ratio,
            tight_share: bt / tight.as_f64(),
            lax_share: bl / lax.as_f64(),
        });
        ratio *= 10f64.powf(0.25);
    }
    let result = Fig2 { lambda_i, points };

    let mut text = String::new();
    text.push_str(&format!(
        "n = 10 equally popular servers, nine at λ_i = {lambda_i:.0e};\n\
         B_j for the tenth server as its λ_j sweeps (eq. 7).\n\n"
    ));
    text.push_str(" λ_j/λ_i    B_j/B₀ (tight, B₀=1/λ_i)   B_j/B₀ (lax, B₀=10/λ_i)\n");
    for p in &result.points {
        text.push_str(&format!(
            "{:>8.3}    {:>22.4}   {:>22.4}\n",
            p.lambda_ratio, p.tight_share, p.lax_share
        ));
    }
    text.push_str("\nB_j/B₀ vs log10(λ_j/λ_i):\n");
    let series = vec![
        crate::plot::Series::new(
            "tight (B₀ = 1/λ_i)",
            result
                .points
                .iter()
                .map(|p| (p.lambda_ratio.log10(), p.tight_share))
                .collect(),
        ),
        crate::plot::Series::new(
            "lax (B₀ = 10/λ_i)",
            result
                .points
                .iter()
                .map(|p| (p.lambda_ratio.log10(), p.lax_share))
                .collect(),
        ),
    ];
    text.push_str(&crate::plot::render(&series, 64, 12));
    text.push_str(
        "\nshape check (the paper's two regimes): with lax storage the\n\
         allocation peaks at a *smaller* λ_j than with tight storage —\n\
         uniform servers are worth covering only when space is plentiful;\n\
         when space is scarce, intermediate (more concentrated) λ_j wins.\n",
    );

    Ok(Report::new(
        "fig2",
        "storage allocation for equally popular servers (eq. 7)",
        text,
        &result,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reproduces_both_regimes() {
        let r = run(Scale::Quick, 0).unwrap();
        let pts: Vec<(f64, f64, f64)> = r.json["points"]
            .as_array()
            .unwrap()
            .iter()
            .map(|p| {
                (
                    p["lambda_ratio"].as_f64().unwrap(),
                    p["tight_share"].as_f64().unwrap(),
                    p["lax_share"].as_f64().unwrap(),
                )
            })
            .collect();

        // All shares are clipped to [0, 1].
        for p in &pts {
            assert!(
                (0.0..=1.0).contains(&p.1),
                "tight share out of range: {p:?}"
            );
            assert!((0.0..=1.0).contains(&p.2), "lax share out of range: {p:?}");
        }

        let argmax = |f: &dyn Fn(&(f64, f64, f64)) -> f64| {
            pts.iter()
                .enumerate()
                .max_by(|a, b| f(a.1).partial_cmp(&f(b.1)).unwrap())
                .map(|(i, p)| (i, p.0))
                .unwrap()
        };
        let (tight_idx, tight_peak) = argmax(&|p| p.1);
        let (lax_idx, lax_peak) = argmax(&|p| p.2);

        // Both peaks are interior (extremely uniform or extremely
        // concentrated servers get little in either regime)…
        assert!(tight_idx > 0 && tight_idx < pts.len() - 1);
        assert!(lax_idx > 0 && lax_idx < pts.len() - 1);
        // …and the tight regime favors more-concentrated servers than
        // the lax regime (the paper's "intermediate values for λ" rule).
        assert!(
            tight_peak > lax_peak,
            "tight peak at λ_j/λ_i = {tight_peak}, lax at {lax_peak}"
        );
        // With lax storage the near-uniform server still gets plenty;
        // with tight storage it gets (almost) nothing.
        let near_uniform = pts.iter().find(|p| p.0 > 0.45 && p.0 < 0.7).unwrap();
        assert!(
            near_uniform.2 > near_uniform.1,
            "lax regime should favor uniform servers more: {near_uniform:?}"
        );
    }
}
