//! Minimal ASCII line plots for the rendered figures.
//!
//! The paper's artifacts are *figures*; the text tables carry the exact
//! numbers, and these plots carry the shape at a glance. One canvas,
//! multiple series, linear axes, automatic bounds.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name (its first character is the plot glyph).
    pub name: String,
    /// The points; need not be sorted.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            name: name.into(),
            points,
        }
    }
}

/// Renders series onto a `width × height` canvas with axis labels.
/// Returns an empty string when there is nothing plottable (no finite
/// points) — callers can append unconditionally.
pub fn render(series: &[Series], width: usize, height: usize) -> String {
    let width = width.clamp(16, 200);
    let height = height.clamp(4, 60);
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if pts.is_empty() {
        return String::new();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }

    let mut canvas = vec![vec![' '; width]; height];
    for s in series {
        let glyph = s.name.chars().next().unwrap_or('*');
        for &(x, y) in &s.points {
            if !(x.is_finite() && y.is_finite()) {
                continue;
            }
            let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            // First-drawn series wins collisions; later glyphs only fill
            // blank cells so overlapping curves stay distinguishable.
            if canvas[row][col] == ' ' {
                canvas[row][col] = glyph;
            }
        }
    }

    let mut out = String::new();
    for (i, row) in canvas.iter().enumerate() {
        let label = if i == 0 {
            format!("{y1:>9.1}")
        } else if i == height - 1 {
            format!("{y0:>9.1}")
        } else {
            " ".repeat(9)
        };
        out.push_str(&label);
        out.push('|');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:>10}{:<w$}{:>8}\n",
        format!("{x0:.1}"),
        "",
        format!("{x1:.1}"),
        w = width.saturating_sub(8)
    ));
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{} = {}", s.name.chars().next().unwrap_or('*'), s.name))
        .collect();
    out.push_str(&format!("          [{}]\n", legend.join(", ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_a_line() {
        let s = Series::new(
            "load",
            (0..20).map(|i| (i as f64, i as f64 * 2.0)).collect(),
        );
        let p = render(&[s], 40, 10);
        assert!(p.contains('l'), "glyph missing:\n{p}");
        assert!(p.contains("[l = load]"));
        // Axis labels present.
        assert!(p.contains("38.0"));
        assert!(p.contains("0.0"));
    }

    #[test]
    fn multiple_series_keep_distinct_glyphs() {
        let a = Series::new("alpha", vec![(0.0, 0.0), (1.0, 1.0)]);
        let b = Series::new("beta", vec![(0.0, 1.0), (1.0, 0.0)]);
        let p = render(&[a, b], 30, 8);
        assert!(p.contains('a'));
        assert!(p.contains('b'));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(render(&[], 40, 10), "");
        let nan = Series::new("n", vec![(f64::NAN, 1.0)]);
        assert_eq!(render(&[nan], 40, 10), "");
        // A single point still renders.
        let one = Series::new("p", vec![(5.0, 5.0)]);
        let p = render(&[one], 40, 10);
        assert!(p.contains('p'));
    }

    #[test]
    fn bounds_are_clamped() {
        let s = Series::new("x", vec![(0.0, 0.0), (1.0, 1.0)]);
        let p = render(&[s], 1, 1); // clamps to 16×4
        assert!(!p.is_empty());
    }
}
