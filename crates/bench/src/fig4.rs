//! Figure 4 — histogram of document pairs over `p[i,j]` ranges.
//!
//! The paper computes `P` from one month of logs (>50,000 accesses,
//! `T_w = 5 s`) and finds a histogram with peaks at `p = 1/k` (a page's
//! `k` anchors are followed near-uniformly) and an embedding peak at
//! `p ≈ 1`. We estimate `P` from the bu workload and check for the same
//! peaks.

use serde::Serialize;
use specweb_core::time::Duration;
use specweb_core::Result;
use specweb_spec::deps::DepMatrixBuilder;

use crate::{Report, Scale};

/// Machine-readable result.
#[derive(Debug, Serialize)]
pub struct Fig4 {
    /// Histogram bin counts over `[0, 1]` (last bin holds `p = 1`).
    pub bins: Vec<u64>,
    /// Number of bins.
    pub nbins: usize,
    /// Total (i, j) pairs.
    pub total_pairs: u64,
    /// Pairs in the embedding peak (`p ≥ 0.95`).
    pub embedding_pairs: u64,
}

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Result<Report> {
    let obs = specweb_core::obs::Obs::new();
    let trace = crate::workloads::bu_trace_with(scale, seed, Some(&obs))?;
    // Like the paper: one month of accesses (or everything, if less).
    let cutoff = trace.accesses.partition_point(|a| a.time.day() < 30);
    let slice = &trace.accesses[..cutoff.max(1)];
    let matrix = DepMatrixBuilder::estimate(slice, Duration::from_secs(5), 3);

    let nbins = 20usize;
    let hist = matrix.probability_histogram(nbins);
    let embedding_pairs = matrix.entries().filter(|&(_, _, p)| p >= 0.95).count() as u64;

    // Deterministic-channel accounting: everything here is a pure
    // function of (scale, seed), so manifest snapshots must match
    // byte-for-byte across worker counts.
    obs.metrics
        .counter("fig4.accesses_used")
        .add(slice.len() as u64);
    obs.metrics.counter("fig4.pairs_total").add(hist.total());
    obs.metrics
        .counter("fig4.embedding_pairs")
        .add(embedding_pairs);
    let phist = obs.metrics.histogram("fig4.probability", 0.0, 1.0, nbins);
    for (_, _, p) in matrix.entries() {
        phist.observe(p);
    }
    let result = Fig4 {
        bins: hist.bins().to_vec(),
        nbins,
        total_pairs: hist.total(),
        embedding_pairs,
    };

    let mut text = String::new();
    text.push_str(&format!(
        "P estimated from {} accesses, T_w = 5 s; {} document pairs\n\n",
        slice.len(),
        result.total_pairs
    ));
    text.push_str(&hist.render(44));
    text.push_str(&format!(
        "\nembedding peak (p ≥ 0.95): {} pairs\n",
        result.embedding_pairs
    ));
    text.push_str(
        "shape check: peaks near 1/k for small k (uniform anchor choice)\n\
         and a distinct embedding peak at the right edge, as in the paper.\n",
    );

    Ok(Report::new(
        "fig4",
        "document pairs per p[i,j] range (T_w = 5 s)",
        text,
        &result,
    )
    .with_metrics(obs.snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_quick_shows_embedding_peak_and_spread() {
        let r = run(Scale::Quick, 14).unwrap();
        let bins: Vec<u64> = r.json["bins"]
            .as_array()
            .unwrap()
            .iter()
            .map(|b| b.as_u64().unwrap())
            .collect();
        let total: u64 = bins.iter().sum();
        assert!(total > 50, "too few pairs: {total}");
        // Embedding peak: the top bin is well populated.
        assert!(
            r.json["embedding_pairs"].as_u64().unwrap() > 0,
            "no embedding dependencies found"
        );
        // Traversal spread: mass exists below 0.5 too (the 1/k region
        // for k ≥ 2).
        let low: u64 = bins[..10].iter().sum();
        assert!(low > 0, "no traversal dependencies below p = 0.5");
    }
}
