//! Figures 5 & 6 — the baseline speculative-service sweep.
//!
//! Fig. 5 plots the four metrics against the speculation threshold
//! `T_p` under the baseline parameters (§3.2 table). Fig. 6 replots the
//! same runs against the % *increase in traffic*, where the paper reads
//! off its headline numbers:
//!
//! * +5% traffic  ⇒ −30% server load, −23% service time, −18% miss rate;
//! * +10% traffic ⇒ −35%, −27%, −23%;
//! * +50% traffic ⇒ −45%, −40%, −35%;
//! * +100% traffic ⇒ only ≈ 7/6/2 points more than +50%.
//!
//! Absolute values depend on the trace; the *shape* — steep gains for
//! the first few percent of traffic, hard saturation beyond — is the
//! reproduction target.

use serde::Serialize;
use specweb_core::obs::Obs;
use specweb_core::Result;
use specweb_spec::estimator::MatrixStore;
use specweb_spec::simulate::{SpecConfig, SpecSim};

use crate::{pct, Report, Scale};

/// One sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// The threshold `T_p`.
    pub tp: f64,
    /// Traffic increase, percent.
    pub traffic_pct: f64,
    /// Server-load reduction, percent.
    pub load_reduction_pct: f64,
    /// Service-time reduction, percent.
    pub time_reduction_pct: f64,
    /// Miss-rate reduction, percent.
    pub miss_reduction_pct: f64,
    /// Raw pushes / wasted pushes.
    pub pushes: u64,
    /// Pushes that found the document already cached.
    pub wasted_pushes: u64,
}

/// The full sweep (shared by fig5 and fig6).
#[derive(Debug, Clone, Serialize)]
pub struct Sweep {
    /// Points in decreasing `T_p` order.
    pub points: Vec<SweepPoint>,
    /// Accesses in the driving trace.
    pub trace_len: usize,
}

/// The `T_p` grid.
fn tp_grid(scale: Scale) -> &'static [f64] {
    match scale {
        Scale::Full => &[
            1.0, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.15, 0.1, 0.05, 0.02,
        ],
        Scale::Quick => &[1.0, 0.9, 0.7, 0.5, 0.3, 0.15, 0.05],
    }
}

/// Runs the baseline sweep once; both figures render from it.
pub fn sweep(scale: Scale, seed: u64) -> Result<Sweep> {
    sweep_jobs(scale, seed, specweb_core::par::default_jobs(), None)
}

/// [`sweep`] with an explicit worker count for the `T_p` grid.
///
/// Each grid point is an independent replay of the same trace against
/// the same precomputed matrices, so the points fan out on `jobs`
/// workers; the result is byte-identical for every `jobs` value. When
/// `obs` is given, every replay publishes its per-policy accounting
/// into it — counter merges are commutative sums, so the totals are
/// byte-identical across worker counts too.
fn sweep_jobs(scale: Scale, seed: u64, jobs: usize, obs: Option<&Obs>) -> Result<Sweep> {
    let topo = crate::workloads::topology();
    let trace = crate::workloads::bu_trace_with(scale, seed, obs)?;
    let mut sim = SpecSim::new(&trace, &topo);
    if let Some(obs) = obs {
        sim = sim.with_obs(obs);
    }

    let mut cfg = SpecConfig::baseline(0.5);
    cfg.estimator.history_days = crate::workloads::history_days(scale);
    cfg.warmup_days = crate::workloads::warmup_days(scale);

    let total_days = trace.duration.as_millis() / 86_400_000;
    let store = MatrixStore::precompute(&cfg.estimator, &trace, total_days)?;
    if let Some(obs) = obs {
        store.record_truncation(obs);
    }

    // One baseline replay serves the whole T_p grid — the demand side
    // never reads the policy.
    let baseline = sim.baseline_totals(&cfg)?;

    let points = specweb_core::par::Pool::new(jobs).try_map_indexed(
        tp_grid(scale),
        |_, &tp| -> Result<SweepPoint> {
            let mut cfg = cfg;
            cfg.policy = specweb_spec::policy::Policy::Threshold { tp };
            let out = sim.run_with_store_and_baseline(&cfg, Some(&store), Some(&baseline))?;
            Ok(SweepPoint {
                tp,
                traffic_pct: out.ratios.traffic_increase_pct(),
                load_reduction_pct: out.ratios.server_load_reduction_pct(),
                time_reduction_pct: out.ratios.service_time_reduction_pct(),
                miss_reduction_pct: out.ratios.miss_rate_reduction_pct(),
                pushes: out.pushes,
                wasted_pushes: out.wasted_pushes,
            })
        },
    )?;
    Ok(Sweep {
        points,
        trace_len: trace.len(),
    })
}

/// Extra independent replications run besides the base seed.
pub const EXTRA_REPS: usize = 2;

/// The baseline sweep replicated across independent seeds.
///
/// `seeds[0]` is the caller's seed and `base` its sweep — so the base
/// numbers are exactly what [`sweep`] would have produced — and the
/// extra replication seeds are derived with
/// `SeedTree::child_idx("fig5-rep", r)`, one independent trace each.
#[derive(Debug, Clone, Serialize)]
pub struct Replicated {
    /// The base-seed sweep (rendered in full).
    pub base: Sweep,
    /// Sweeps for the extra replication seeds.
    pub reps: Vec<Sweep>,
    /// All seeds: `[base, rep 1, rep 2, …]`.
    pub seeds: Vec<u64>,
}

/// Runs the baseline sweep for the base seed plus [`EXTRA_REPS`]
/// derived seeds, fanning the replications out in parallel (each inner
/// `T_p` grid then runs serially so the fan-out does not nest).
pub fn sweep_replicated(scale: Scale, seed: u64, obs: Option<&Obs>) -> Result<Replicated> {
    let tree = specweb_core::rng::SeedTree::new(seed);
    let mut seeds = vec![seed];
    seeds.extend((0..EXTRA_REPS as u64).map(|r| tree.child_idx("fig5-rep", r).seed()));
    let sweeps = specweb_core::par::Pool::auto()
        .try_map_indexed(&seeds, |_, &s| sweep_jobs(scale, s, 1, obs))?;
    let mut sweeps = sweeps.into_iter();
    let Some(base) = sweeps.next() else {
        // `seeds` starts with the base seed, so the pool returns at
        // least one sweep; keep a structured error anyway.
        return Err(specweb_core::CoreError::Estimation(
            "replicated sweep produced no base run".into(),
        ));
    };
    Ok(Replicated {
        base,
        reps: sweeps.collect(),
        seeds,
    })
}

/// Mean and sample standard deviation.
pub(crate) fn mean_sd(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = if xs.len() > 1 {
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    (mean, var.sqrt())
}

/// Renders the cross-seed dispersion appendix shared by fig5 and fig6.
fn replication_appendix(r: &Replicated) -> String {
    let mut all: Vec<&Sweep> = Vec::with_capacity(1 + r.reps.len());
    all.push(&r.base);
    all.extend(r.reps.iter());
    let at_min_tp = |f: &dyn Fn(&SweepPoint) -> f64| -> Vec<f64> {
        all.iter().filter_map(|s| s.points.last()).map(f).collect()
    };
    let (lm, ls) = mean_sd(&at_min_tp(&|p| p.load_reduction_pct));
    let (tm, ts) = mean_sd(&at_min_tp(&|p| p.traffic_pct));
    format!(
        "\nreplication across {} independent seeds {:?}, at the most\n\
         aggressive T_p: load reduction {:.1}% ± {:.1}, traffic +{:.1}% ± {:.1}.\n",
        r.seeds.len(),
        r.seeds,
        lm,
        ls,
        tm,
        ts
    )
}

/// Renders Fig. 5 from a replicated sweep (the base sweep in full, the
/// replications as a dispersion appendix).
pub fn report(replicated: &Replicated) -> Report {
    let sweep = &replicated.base;
    let mut text = String::new();
    text.push_str(&format!(
        "baseline parameters, {} accesses; metrics vs T_p\n\n",
        sweep.trace_len
    ));
    text.push_str("  T_p    traffic     load     time     miss    pushes (wasted)\n");
    for p in &sweep.points {
        text.push_str(&format!(
            "{:>5.2}  {:>8}  {:>7}  {:>7}  {:>7}   {:>7} ({})\n",
            p.tp,
            pct(p.traffic_pct),
            pct(-p.load_reduction_pct),
            pct(-p.time_reduction_pct),
            pct(-p.miss_reduction_pct),
            p.pushes,
            p.wasted_pushes
        ));
    }
    text.push_str("\nreductions (%) vs T_p:\n");
    let series = vec![
        crate::plot::Series::new(
            "load",
            sweep
                .points
                .iter()
                .map(|p| (p.tp, p.load_reduction_pct))
                .collect(),
        ),
        crate::plot::Series::new(
            "time",
            sweep
                .points
                .iter()
                .map(|p| (p.tp, p.time_reduction_pct))
                .collect(),
        ),
        crate::plot::Series::new(
            "miss",
            sweep
                .points
                .iter()
                .map(|p| (p.tp, p.miss_reduction_pct))
                .collect(),
        ),
    ];
    text.push_str(&crate::plot::render(&series, 64, 14));
    text.push_str(
        "\nshape check: near T_p = 1 traffic is ≈ flat (embedding deps are\n\
         free); lowering T_p buys load/time/miss reductions at increasing\n\
         bandwidth cost, with diminishing returns.\n",
    );
    text.push_str(&replication_appendix(replicated));
    Report::new(
        "fig5",
        "baseline simulation results vs speculation threshold T_p",
        text,
        replicated,
    )
}

/// Linear interpolation of the sweep at a given traffic increase.
fn at_traffic(sweep: &Sweep, traffic_pct: f64) -> Option<(f64, f64, f64)> {
    // Points are in increasing-traffic order when reversed by tp.
    // total_cmp keeps a degenerate (NaN-traffic) point from panicking.
    let mut pts: Vec<&SweepPoint> = sweep.points.iter().collect();
    pts.sort_by(|a, b| a.traffic_pct.total_cmp(&b.traffic_pct));
    if pts.is_empty() || traffic_pct < pts[0].traffic_pct {
        return None;
    }
    for w in pts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a.traffic_pct <= traffic_pct && traffic_pct <= b.traffic_pct {
            let span = (b.traffic_pct - a.traffic_pct).max(1e-9);
            let t = (traffic_pct - a.traffic_pct) / span;
            let lerp = |x: f64, y: f64| x + (y - x) * t;
            return Some((
                lerp(a.load_reduction_pct, b.load_reduction_pct),
                lerp(a.time_reduction_pct, b.time_reduction_pct),
                lerp(a.miss_reduction_pct, b.miss_reduction_pct),
            ));
        }
    }
    // Beyond the last point: clamp to it.
    pts.last().map(|p| {
        (
            p.load_reduction_pct,
            p.time_reduction_pct,
            p.miss_reduction_pct,
        )
    })
}

/// Machine-readable fig6 result.
#[derive(Debug, Serialize)]
pub struct Fig6 {
    /// `(traffic_pct, load_red, time_red, miss_red)` checkpoints.
    pub checkpoints: Vec<(f64, f64, f64, f64)>,
    /// The underlying replicated sweep.
    pub sweep: Replicated,
}

/// Renders Fig. 6 (gains vs % traffic increase) from the same sweep.
pub fn report_fig6(replicated: &Replicated) -> Report {
    let sweep = &replicated.base;
    let mut text = String::new();
    text.push_str("performance gains as a function of extra traffic\n\n");
    text.push_str("traffic    load     time     miss\n");
    let mut pts: Vec<&SweepPoint> = sweep.points.iter().collect();
    pts.sort_by(|a, b| a.traffic_pct.total_cmp(&b.traffic_pct));
    for p in &pts {
        text.push_str(&format!(
            "{:>7}  {:>7}  {:>7}  {:>7}\n",
            pct(p.traffic_pct),
            pct(-p.load_reduction_pct),
            pct(-p.time_reduction_pct),
            pct(-p.miss_reduction_pct)
        ));
    }

    let mut checkpoints = Vec::new();
    text.push_str("\npaper checkpoints (paper ⇒ here):\n");
    let paper = [
        (5.0, 30.0, 23.0, 18.0),
        (10.0, 35.0, 27.0, 23.0),
        (50.0, 45.0, 40.0, 35.0),
        (100.0, 52.0, 46.0, 37.0),
    ];
    for (traffic, pl, pt_, pm) in paper {
        if let Some((l, t, m)) = at_traffic(sweep, traffic) {
            checkpoints.push((traffic, l, t, m));
            text.push_str(&format!(
                "+{traffic:.0}% traffic: load −{pl:.0} ⇒ −{l:.0} | time −{pt_:.0} ⇒ −{t:.0} | miss −{pm:.0} ⇒ −{m:.0}\n"
            ));
        } else {
            text.push_str(&format!(
                "+{traffic:.0}% traffic: not reached by this sweep\n"
            ));
        }
    }

    text.push_str("\nreductions (%) vs extra traffic (%), traffic axis clipped at +120%:\n");
    let clip = |f: &dyn Fn(&SweepPoint) -> f64| -> Vec<(f64, f64)> {
        pts.iter()
            .filter(|p| p.traffic_pct <= 120.0)
            .map(|p| (p.traffic_pct, f(p)))
            .collect()
    };
    let series = vec![
        crate::plot::Series::new("load", clip(&|p| p.load_reduction_pct)),
        crate::plot::Series::new("time", clip(&|p| p.time_reduction_pct)),
        crate::plot::Series::new("miss", clip(&|p| p.miss_reduction_pct)),
    ];
    text.push_str(&crate::plot::render(&series, 64, 14));
    text.push_str(&replication_appendix(replicated));

    let result = Fig6 {
        checkpoints,
        sweep: replicated.clone(),
    };
    Report::new(
        "fig6",
        "performance gains versus bandwidth used",
        text,
        &result,
    )
}

/// fig5 entry point.
pub fn run(scale: Scale, seed: u64) -> Result<Report> {
    let obs = Obs::new();
    Ok(report(&sweep_replicated(scale, seed, Some(&obs))?).with_metrics(obs.snapshot()))
}

/// fig6 entry point.
pub fn run_fig6(scale: Scale, seed: u64) -> Result<Report> {
    let obs = Obs::new();
    Ok(report_fig6(&sweep_replicated(scale, seed, Some(&obs))?).with_metrics(obs.snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_the_paper_shape() {
        let s = sweep(Scale::Quick, 15).unwrap();
        assert_eq!(s.points.len(), tp_grid(Scale::Quick).len());
        // Traffic grows as T_p falls.
        for w in s.points.windows(2) {
            assert!(
                w[1].traffic_pct >= w[0].traffic_pct - 0.5,
                "traffic should grow as T_p falls: {w:?}"
            );
        }
        // The most aggressive point reduces load meaningfully.
        let last = s.points.last().unwrap();
        assert!(
            last.load_reduction_pct > 10.0,
            "aggressive speculation too weak: {last:?}"
        );
        // The T_p = 1 point is (nearly) traffic neutral.
        let first = &s.points[0];
        assert!(
            first.traffic_pct < 2.0,
            "T_p = 1 should be ≈ traffic neutral: {first:?}"
        );
    }

    #[test]
    fn fig6_interpolation_is_sane() {
        let s = sweep(Scale::Quick, 16).unwrap();
        let r = report_fig6(&Replicated {
            base: s.clone(),
            reps: Vec::new(),
            seeds: vec![16],
        });
        assert!(r.text.contains("paper checkpoints"));
        assert!(r.text.contains("replication across 1 independent seeds"));
        // Interpolating at an existing point returns that point.
        let p = &s.points[s.points.len() / 2];
        let (l, _, _) = at_traffic(&s, p.traffic_pct).unwrap();
        assert!((l - p.load_reduction_pct).abs() < 1.0);
    }

    #[test]
    fn parallel_sweep_is_identical_to_serial() {
        // The determinism contract at the bench layer: the T_p grid
        // fans out over workers, yet every float must match bit for bit,
        // and so must the metric snapshot the replays publish.
        let obs_serial = Obs::new();
        let obs_parallel = Obs::new();
        let serial = sweep_jobs(Scale::Quick, 15, 1, Some(&obs_serial)).unwrap();
        let parallel = sweep_jobs(Scale::Quick, 15, 4, Some(&obs_parallel)).unwrap();
        assert_eq!(obs_serial.snapshot(), obs_parallel.snapshot());
        assert_eq!(serial.trace_len, parallel.trace_len);
        assert_eq!(serial.points.len(), parallel.points.len());
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a.tp.to_bits(), b.tp.to_bits());
            assert_eq!(a.traffic_pct.to_bits(), b.traffic_pct.to_bits());
            assert_eq!(
                a.load_reduction_pct.to_bits(),
                b.load_reduction_pct.to_bits()
            );
            assert_eq!(a.pushes, b.pushes);
            assert_eq!(a.wasted_pushes, b.wasted_pushes);
        }
    }

    #[test]
    fn mean_sd_is_sane() {
        let (m, s) = mean_sd(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        let (m1, s1) = mean_sd(&[5.0]);
        assert_eq!(m1, 5.0);
        assert_eq!(s1, 0.0);
    }

    #[test]
    fn diminishing_returns_visible_in_sweep() {
        let s = sweep(Scale::Quick, 17).unwrap();
        let mut pts: Vec<&SweepPoint> = s.points.iter().collect();
        pts.sort_by(|a, b| a.traffic_pct.total_cmp(&b.traffic_pct));
        // Efficiency (load reduction per unit traffic) at the cheap end
        // beats the expensive end.
        let first_eff = pts
            .iter()
            .find(|p| p.traffic_pct > 0.3)
            .map(|p| p.load_reduction_pct / p.traffic_pct);
        let last = pts.last().unwrap();
        if let Some(fe) = first_eff {
            let le = last.load_reduction_pct / last.traffic_pct.max(1e-9);
            assert!(
                fe >= le,
                "efficiency should not grow with aggression: {fe} vs {le}"
            );
        }
    }
}
