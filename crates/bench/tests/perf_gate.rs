//! End-to-end gate for `figures --check-perf`: the binary must append
//! every run to `perf_trajectory.json`, exit zero when there is no
//! comparable history (or the run is within tolerance), and exit
//! nonzero when a phase regressed past the tolerance of the most
//! recent comparable ledger entry.
//!
//! The regression is *injected*: the test pre-seeds the ledger with a
//! comparable entry whose timings are impossibly fast (1 ms), so the
//! real run is guaranteed to blow the `prev × 1.25 + 0.5s` limit.

use std::path::Path;
use std::process::Command;

fn run_figures(out: &Path, check_perf: bool) -> std::process::ExitStatus {
    let mut args = vec![
        "--quick".to_string(),
        "--seed".to_string(),
        "5".to_string(),
        "--jobs".to_string(),
        "2".to_string(),
        "--out".to_string(),
        out.to_str().unwrap().to_string(),
    ];
    if check_perf {
        args.push("--check-perf".to_string());
    }
    args.push("exp-closure".to_string());
    Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(&args)
        .status()
        .expect("spawn figures")
}

fn ledger(out: &Path) -> serde_json::Value {
    let raw = std::fs::read_to_string(out.join("perf_trajectory.json"))
        .expect("perf_trajectory.json written");
    serde_json::from_str(&raw).expect("ledger parses")
}

/// A ledger with one prior entry comparable to the test invocation
/// (same jobs/scale/scale_factor) but absurdly fast, so any real run
/// regresses past tolerance.
fn impossible_baseline() -> String {
    serde_json::to_string_pretty(&serde_json::json!({
        "schema": "specweb-perf/v1",
        "entries": [{
            "git": "v0-baseline",
            "jobs": 2,
            "scale": "quick",
            "scale_factor": 1,
            "seed": 5,
            "total_seconds": 0.001,
            "experiments": [{ "id": "exp-closure", "seconds": 0.001 }]
        }]
    }))
    .unwrap()
}

#[test]
fn check_perf_gates_on_an_injected_regression() {
    let base = std::env::temp_dir().join(format!("specweb-perf-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Fresh directory, no history: --check-perf has nothing to regress
    // from and must pass, seeding the ledger with this run's entry.
    let fresh = base.join("fresh");
    std::fs::create_dir_all(&fresh).unwrap();
    let status = run_figures(&fresh, true);
    assert!(status.success(), "no-history --check-perf failed: {status}");
    let entries = ledger(&fresh)["entries"].as_array().unwrap().len();
    assert_eq!(entries, 1, "the run must append itself to the ledger");

    // Injected regression: a comparable 1 ms baseline makes the real
    // run (orders of magnitude slower) a guaranteed regression.
    let rigged = base.join("rigged");
    std::fs::create_dir_all(&rigged).unwrap();
    std::fs::write(rigged.join("perf_trajectory.json"), impossible_baseline()).unwrap();
    let status = run_figures(&rigged, true);
    assert!(
        !status.success(),
        "--check-perf must exit nonzero on a regression past tolerance"
    );
    // The regressing run is still appended — the ledger records what
    // happened, the exit code is the gate.
    let entries = ledger(&rigged)["entries"].as_array().unwrap().len();
    assert_eq!(entries, 2, "the regressing run must still be recorded");

    // Same injected regression without --check-perf: warn-only, exit 0.
    let warned = base.join("warned");
    std::fs::create_dir_all(&warned).unwrap();
    std::fs::write(warned.join("perf_trajectory.json"), impossible_baseline()).unwrap();
    let status = run_figures(&warned, false);
    assert!(
        status.success(),
        "without --check-perf a regression must only warn: {status}"
    );

    let _ = std::fs::remove_dir_all(&base);
}
