//! Golden-output determinism: the `figures` binary must emit
//! byte-identical result files whether it runs serially or on a worker
//! pool. Only `bench_timings.json` — wall-clock accounting — may
//! differ between the two runs.
//!
//! The experiment set exercises every parallel site in the stack:
//! `fig4` (trace → estimator → simulator) and `exp-closure` (the
//! parallel `DepMatrix::closure` and `MatrixStore::precompute` paths).

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

const TIMINGS: &str = "bench_timings.json";

fn run_figures(out: &Path, jobs: &str) {
    let status = Command::new(env!("CARGO_BIN_EXE_figures"))
        .args([
            "--quick",
            "--seed",
            "5",
            "--jobs",
            jobs,
            "--out",
            out.to_str().unwrap(),
            "fig4",
            "exp-closure",
        ])
        .status()
        .expect("spawn figures");
    assert!(status.success(), "figures --jobs {jobs} failed: {status}");
}

/// File name → contents for every file in `dir`.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("read out dir")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect()
}

#[test]
fn serial_and_parallel_runs_are_byte_identical() {
    let base = std::env::temp_dir().join(format!("specweb-determinism-{}", std::process::id()));
    let dir_serial = base.join("serial");
    let dir_parallel = base.join("parallel");
    let _ = std::fs::remove_dir_all(&base);

    run_figures(&dir_serial, "1");
    run_figures(&dir_parallel, "4");

    let mut serial = snapshot(&dir_serial);
    let mut parallel = snapshot(&dir_parallel);

    // Timings are wall-clock accounting: present in both runs, valid
    // JSON with one entry per experiment, but never byte-compared.
    for snap in [&mut serial, &mut parallel] {
        let raw = snap.remove(TIMINGS).expect("bench_timings.json written");
        let raw = String::from_utf8(raw).expect("timings are utf-8");
        let parsed: serde_json::Value = serde_json::from_str(&raw).expect("timings parse");
        assert_eq!(parsed["experiments"].as_array().unwrap().len(), 2);
        assert!(parsed["total_seconds"].as_f64().unwrap() >= 0.0);
    }
    assert_eq!(serial.get(TIMINGS), None);

    let serial_names: Vec<&String> = serial.keys().collect();
    let parallel_names: Vec<&String> = parallel.keys().collect();
    assert_eq!(serial_names, parallel_names, "different file sets");
    assert!(
        serial.keys().any(|n| n.ends_with(".json")),
        "no result files produced"
    );

    for (name, bytes) in &serial {
        assert_eq!(
            bytes,
            parallel.get(name).unwrap(),
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}
