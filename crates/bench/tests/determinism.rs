//! Golden-output determinism: the `figures` binary must emit
//! byte-identical result files whether it runs serially or on a worker
//! pool. Only `bench_timings.json` — wall-clock accounting — and the
//! `nondeterministic` sections of the `manifest_*.json` files may
//! differ between the two runs; each manifest's `deterministic`
//! section (seed, scale, and the deterministic-channel metric
//! snapshot) must match exactly.
//!
//! The experiment set exercises every parallel site in the stack:
//! `fig4` (trace → estimator → simulator) and `exp-closure` (the
//! parallel `DepMatrix::closure` and `MatrixStore::precompute` paths).

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

const TIMINGS: &str = "bench_timings.json";
const TRAJECTORY: &str = "perf_trajectory.json";

fn run_figures(out: &Path, jobs: &str) {
    let status = Command::new(env!("CARGO_BIN_EXE_figures"))
        .args([
            "--quick",
            "--seed",
            "5",
            "--jobs",
            jobs,
            "--out",
            out.to_str().unwrap(),
            "fig4",
            "exp-closure",
        ])
        .status()
        .expect("spawn figures");
    assert!(status.success(), "figures --jobs {jobs} failed: {status}");
}

/// File name → contents for every file in `dir`.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("read out dir")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect()
}

#[test]
fn serial_and_parallel_runs_are_byte_identical() {
    let base = std::env::temp_dir().join(format!("specweb-determinism-{}", std::process::id()));
    let dir_serial = base.join("serial");
    let dir_parallel = base.join("parallel");
    let _ = std::fs::remove_dir_all(&base);

    run_figures(&dir_serial, "1");
    run_figures(&dir_parallel, "4");

    let mut serial = snapshot(&dir_serial);
    let mut parallel = snapshot(&dir_parallel);

    // Timings are wall-clock accounting: present in both runs, valid
    // JSON with one entry per experiment, but never byte-compared.
    for snap in [&mut serial, &mut parallel] {
        let raw = snap.remove(TIMINGS).expect("bench_timings.json written");
        let raw = String::from_utf8(raw).expect("timings are utf-8");
        let parsed: serde_json::Value = serde_json::from_str(&raw).expect("timings parse");
        assert_eq!(parsed["experiments"].as_array().unwrap().len(), 2);
        assert!(parsed["total_seconds"].as_f64().unwrap() >= 0.0);
    }
    assert_eq!(serial.get(TIMINGS), None);

    // The perf-trajectory ledger is wall-clock accounting too: present
    // in both runs, schema-checked, but never byte-compared.
    for snap in [&mut serial, &mut parallel] {
        let raw = snap
            .remove(TRAJECTORY)
            .expect("perf_trajectory.json written");
        let raw = String::from_utf8(raw).expect("trajectory is utf-8");
        let parsed: serde_json::Value = serde_json::from_str(&raw).expect("trajectory parse");
        assert_eq!(parsed["schema"].as_str(), Some("specweb-perf/v1"));
        let entries = parsed["entries"].as_array().unwrap();
        assert_eq!(entries.len(), 1, "fresh out dir gets exactly one entry");
        assert_eq!(
            entries[0]["experiments"].as_array().unwrap().len(),
            2,
            "one phase timing per experiment"
        );
    }

    // Flamegraph profiles are wall-clock accounting too: each frame
    // line is `path calls N wall_us T`. The frame paths and call
    // counts are deterministic (frames sit above the shard fan-out),
    // but the timings are not — compare the lines with `wall_us`
    // stripped, then drop the files from the byte compare.
    let profile_names: Vec<String> = serial
        .keys()
        .filter(|n| n.starts_with("profile_") && n.ends_with(".txt"))
        .cloned()
        .collect();
    for want in ["profile_fig4.txt", "profile_exp-closure.txt"] {
        assert!(
            profile_names.iter().any(|n| n == want),
            "{want} missing from run output ({profile_names:?})"
        );
    }
    for name in &profile_names {
        let calls_only = |snap: &mut BTreeMap<String, Vec<u8>>| -> Vec<String> {
            let raw = snap
                .remove(name)
                .unwrap_or_else(|| panic!("{name} missing"));
            let raw = String::from_utf8(raw).expect("profile is utf-8");
            raw.lines()
                .map(|l| {
                    l.split(" wall_us ")
                        .next()
                        .unwrap_or_else(|| panic!("{name}: malformed line {l:?}"))
                        .to_string()
                })
                .collect()
        };
        let s = calls_only(&mut serial);
        let p = calls_only(&mut parallel);
        assert!(!s.is_empty(), "{name} is empty");
        assert_eq!(
            s, p,
            "{name}: frame paths/call counts differ between --jobs 1 and --jobs 4"
        );
    }

    // Manifests carry a two-channel split: the `deterministic` section
    // (seed root, scale, deterministic-channel metrics) must be
    // identical across worker counts, while the `nondeterministic`
    // section records jobs/timing and is excluded from the byte
    // compare. Pull them out and compare the channels separately.
    let manifest_names: Vec<String> = serial
        .keys()
        .filter(|n| n.starts_with("manifest_") && n.ends_with(".json"))
        .cloned()
        .collect();
    for want in [
        "manifest_fig4.json",
        "manifest_exp-closure.json",
        "manifest_run.json",
    ] {
        assert!(
            manifest_names.iter().any(|n| n == want),
            "{want} missing from run output ({manifest_names:?})"
        );
    }
    for name in &manifest_names {
        let parse = |snap: &mut BTreeMap<String, Vec<u8>>, jobs: u64| -> serde_json::Value {
            let raw = snap
                .remove(name)
                .unwrap_or_else(|| panic!("{name} missing"));
            let raw = String::from_utf8(raw).expect("manifest is utf-8");
            let parsed: serde_json::Value =
                serde_json::from_str(&raw).unwrap_or_else(|e| panic!("{name} parse: {e}"));
            assert_eq!(
                parsed["nondeterministic"]["jobs"].as_u64(),
                Some(jobs),
                "{name} should record its own worker count"
            );
            parsed
        };
        let s = parse(&mut serial, 1);
        let p = parse(&mut parallel, 4);
        assert_eq!(
            s["deterministic"], p["deterministic"],
            "{name}: deterministic section differs between --jobs 1 and --jobs 4"
        );
        assert!(
            s["deterministic"]["metrics"].as_object().is_some(),
            "{name}: deterministic metric snapshot missing"
        );
    }
    // The per-experiment manifests must actually carry metrics — an
    // empty snapshot would mean the instrumentation came unwired.
    for snap_dir in [&dir_serial, &dir_parallel] {
        let raw = std::fs::read_to_string(snap_dir.join("manifest_fig4.json")).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&raw).unwrap();
        let metrics = parsed["deterministic"]["metrics"].as_object().unwrap();
        assert!(
            metrics.iter().any(|(k, _)| k.starts_with("fig4.")),
            "manifest_fig4.json carries no fig4.* metrics"
        );
    }

    let serial_names: Vec<&String> = serial.keys().collect();
    let parallel_names: Vec<&String> = parallel.keys().collect();
    assert_eq!(serial_names, parallel_names, "different file sets");
    assert!(
        serial.keys().any(|n| n.ends_with(".json")),
        "no result files produced"
    );

    for (name, bytes) in &serial {
        assert_eq!(
            bytes,
            parallel.get(name).unwrap(),
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}
