//! Session and stride timing.
//!
//! §3.2 defines two nested units of client activity:
//!
//! * a **traversal stride** — requests separated by less than
//!   `StrideTimeout` (baseline 5 s): a burst of page + embedded-object
//!   fetches and quick link follows;
//! * a **session** — requests separated by less than `SessionTimeout`:
//!   one sitting at the browser, after which the (session-scoped) cache
//!   is purged.
//!
//! The generator produces sessions as alternating *strides* (fast clicks,
//! sub-`StrideTimeout` gaps) and *reading pauses* (longer gaps that end a
//! stride but not the session). Timing parameters are exponential, the
//! standard model for think times.

use rand::Rng;
use serde::{Deserialize, Serialize};
use specweb_core::time::Duration;

/// Timing parameters for session generation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SessionTiming {
    /// Mean gap between requests inside a stride (must stay well below
    /// the 5 s `StrideTimeout` so strides are recovered by the analyzer).
    pub intra_stride_mean: Duration,
    /// Mean reading pause between strides of one session (above
    /// `StrideTimeout`, below `SessionTimeout`).
    pub inter_stride_mean: Duration,
    /// Mean number of page visits per stride (geometric).
    pub mean_stride_len: f64,
    /// Mean number of strides per session (geometric).
    pub mean_strides_per_session: f64,
}

impl Default for SessionTiming {
    fn default() -> Self {
        SessionTiming {
            intra_stride_mean: Duration::from_millis(1_500),
            inter_stride_mean: Duration::from_secs(45),
            mean_stride_len: 3.0,
            mean_strides_per_session: 3.0,
        }
    }
}

impl SessionTiming {
    /// Samples an in-stride gap: exponential with the configured mean,
    /// truncated into `[100 ms, 4.9 s]` so it always stays under the
    /// 5 s baseline `StrideTimeout`.
    pub fn sample_intra_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let mean = self.intra_stride_mean.as_millis() as f64;
        let g = sample_exp(rng, mean);
        Duration::from_millis((g as u64).clamp(100, 4_900))
    }

    /// Samples a between-stride reading pause: exponential, truncated
    /// into `[6 s, 30 min]` — always above `StrideTimeout`, always below
    /// any finite `SessionTimeout` of interest.
    pub fn sample_inter_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let mean = self.inter_stride_mean.as_millis() as f64;
        let g = sample_exp(rng, mean);
        Duration::from_millis((g as u64).clamp(6_000, 1_800_000))
    }

    /// Samples the number of page visits in a stride (≥ 1, geometric).
    pub fn sample_stride_len<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        1 + sample_geometric(rng, self.mean_stride_len - 1.0)
    }

    /// Samples the number of strides in a session (≥ 1, geometric).
    pub fn sample_session_strides<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        1 + sample_geometric(rng, self.mean_strides_per_session - 1.0)
    }
}

/// Exponential sample with the given mean (inverse-CDF).
fn sample_exp<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen::<f64>().max(1e-12);
    -mean * u.ln()
}

/// Geometric sample with the given mean (0 when mean ≤ 0).
fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (1.0 + mean);
    let mut n = 0usize;
    while rng.gen::<f64>() > p && n < 256 {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use specweb_core::rng::SeedTree;

    #[test]
    fn intra_gaps_stay_under_stride_timeout() {
        let t = SessionTiming::default();
        let mut rng = SeedTree::new(30).child("intra").rng();
        for _ in 0..5_000 {
            let g = t.sample_intra_gap(&mut rng);
            assert!(g >= Duration::from_millis(100));
            assert!(g < Duration::from_secs(5), "gap {g} breaks strides");
        }
    }

    #[test]
    fn inter_gaps_exceed_stride_timeout() {
        let t = SessionTiming::default();
        let mut rng = SeedTree::new(31).child("inter").rng();
        for _ in 0..5_000 {
            let g = t.sample_inter_gap(&mut rng);
            assert!(g >= Duration::from_secs(6));
            assert!(g <= Duration::from_secs(1_800));
        }
    }

    #[test]
    fn stride_lengths_have_requested_mean() {
        let t = SessionTiming {
            mean_stride_len: 4.0,
            ..SessionTiming::default()
        };
        let mut rng = SeedTree::new(32).child("len").rng();
        let n = 30_000;
        let total: usize = (0..n).map(|_| t.sample_stride_len(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "stride mean {mean}");
    }

    #[test]
    fn sessions_have_at_least_one_stride() {
        let t = SessionTiming {
            mean_strides_per_session: 1.0,
            ..SessionTiming::default()
        };
        let mut rng = SeedTree::new(33).child("s").rng();
        for _ in 0..1_000 {
            assert!(t.sample_session_strides(&mut rng) >= 1);
        }
    }

    #[test]
    fn exp_sampler_mean() {
        let mut rng = SeedTree::new(34).child("exp").rng();
        let n = 50_000;
        let total: f64 = (0..n).map(|_| sample_exp(&mut rng, 7.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 7.0).abs() < 0.15, "exp mean {mean}");
        assert_eq!(sample_exp(&mut rng, 0.0), 0.0);
    }
}
