//! The top-level trace generator.
//!
//! Produces a time-ordered access trace by simulating browsing sessions
//! over per-server [`SiteGraph`]s, with a client population attached to
//! a netsim topology. The generator is the documented substitution for
//! the paper's `cs-www.bu.edu` logs (see DESIGN.md): every distributional
//! property the paper reports is either built in by construction
//! (embedding deps, 1/k link choice, session/stride timing) or
//! calibrated by configuration (popularity skew, local/remote mix,
//! update rates).
//!
//! Generation is **day-sharded** (DESIGN.md §12): each day draws its
//! randomness from its own `SeedTree` child (`child_idx("day-sessions",
//! day)`), session ids are derived arithmetically (`day ×
//! sessions_per_day + i`), and site-graph churn is folded into per-day
//! graph snapshots *before* the days fan out — so days are independent
//! work items and the merged trace is byte-identical for any worker
//! count.

use rand::Rng;
use serde::{Deserialize, Serialize};
use specweb_core::dist::Zipf;
use specweb_core::ids::{ClientId, DocId, ServerId};
use specweb_core::rng::SeedTree;
use specweb_core::time::{Duration, SimTime};
use specweb_core::units::Bytes;
use specweb_core::Result;
use specweb_netsim::topology::Topology;

use crate::clients::{ClientConfig, ClientPopulation, Locality};
use crate::document::{Catalog, SizeModel};
use crate::session::SessionTiming;
use crate::sitegraph::{SiteGraph, SiteGraphConfig};

/// One access record — the unit both simulators consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Access {
    /// When the request was issued.
    pub time: SimTime,
    /// The requesting client.
    pub client: ClientId,
    /// The requested document.
    pub doc: DocId,
    /// The document's home server.
    pub server: ServerId,
    /// Whether the client is local to the producing organization.
    pub locality: Locality,
    /// The generator's session id (ground truth; analyzers must
    /// *re-derive* sessions from timing, this is for validation only).
    /// Derived as `day × sessions_per_day + i`, so it is stable under
    /// day-sharding and cannot wrap at million-client scale (a `u32`
    /// would silently overflow past 2^32 sessions).
    pub session: u64,
}

/// A complete generated workload.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Time-ordered accesses.
    pub accesses: Vec<Access>,
    /// The document catalog.
    pub catalog: Catalog,
    /// One site graph per server (index = server id). These reflect the
    /// *final* state after any link churn.
    pub graphs: Vec<SiteGraph>,
    /// The client population.
    pub clients: ClientPopulation,
    /// Total simulated span.
    pub duration: Duration,
    /// Number of sessions generated.
    pub n_sessions: u64,
}

impl Trace {
    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Total bytes requested (sum of document sizes over accesses).
    pub fn total_requested_bytes(&self) -> Bytes {
        self.accesses.iter().map(|a| self.catalog.size(a.doc)).sum()
    }

    /// Per-document request counts, indexed by doc id.
    pub fn request_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.catalog.len()];
        for a in &self.accesses {
            counts[a.doc.index()] += 1;
        }
        counts
    }

    /// Per-document (remote, local) request counts.
    pub fn remote_local_counts(&self) -> Vec<(u64, u64)> {
        let mut counts = vec![(0u64, 0u64); self.catalog.len()];
        for a in &self.accesses {
            match a.locality {
                Locality::Remote => counts[a.doc.index()].0 += 1,
                Locality::Local => counts[a.doc.index()].1 += 1,
            }
        }
        counts
    }

    /// The accesses of day `d` (zero-based) as a subslice. The trace is
    /// time-ordered, so this is a binary-search slice.
    pub fn day_slice(&self, d: u64) -> &[Access] {
        let start = self
            .accesses
            .partition_point(|a| a.time < SimTime::from_days(d));
        let end = self
            .accesses
            .partition_point(|a| a.time < SimTime::from_days(d + 1));
        &self.accesses[start..end]
    }

    /// Number of distinct clients that appear in the trace.
    pub fn active_clients(&self) -> usize {
        let mut seen = vec![false; self.clients.len()];
        let mut n = 0;
        for a in &self.accesses {
            if !seen[a.client.index()] {
                seen[a.client.index()] = true;
                n += 1;
            }
        }
        n
    }
}

/// Full generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Number of home servers (1 for the speculative-service experiments,
    /// `n` for cluster-dissemination experiments).
    pub n_servers: usize,
    /// Site-graph structure (per server).
    pub site: SiteGraphConfig,
    /// Client-population parameters.
    pub clients: ClientConfig,
    /// Session timing parameters.
    pub timing: SessionTiming,
    /// Trace span in days (paper: 60-day history + 30-day evaluation).
    pub duration_days: u64,
    /// Sessions started per day across the whole population.
    pub sessions_per_day: usize,
    /// Whether to use the media-heavy size model.
    pub media_sizes: bool,
    /// Per-day probability that a page's out-links are re-targeted
    /// (site evolution; drives the §3.4 staleness experiment).
    pub link_churn_per_day: f64,
    /// Zipf exponent over servers (which server a session lands on);
    /// 0 = uniform.
    pub server_theta: f64,
}

impl TraceConfig {
    /// The `cs-www.bu.edu`-flavored preset: one server, ~1000 documents,
    /// 2000 clients, 90 days, ≈200k accesses.
    pub fn bu_www(seed: u64) -> TraceConfig {
        TraceConfig {
            seed,
            n_servers: 1,
            site: SiteGraphConfig::default(),
            clients: ClientConfig::default(),
            timing: SessionTiming::default(),
            duration_days: 90,
            sessions_per_day: 150,
            media_sizes: false,
            link_churn_per_day: 0.002,
            server_theta: 0.0,
        }
    }

    /// A media-heavy preset (Rolling-Stones-like: few, huge documents,
    /// overwhelmingly remote clientele).
    pub fn media_site(seed: u64) -> TraceConfig {
        TraceConfig {
            seed,
            n_servers: 1,
            site: SiteGraphConfig {
                n_pages: 120,
                mean_embedded: 2.5,
                max_links: 5,
                zipf_theta: 1.1,
                assortativity: 0.9,
                shared_object_pool: 10,
                shared_frac: 0.7,
            },
            clients: ClientConfig {
                n_clients: 4_000,
                local_fraction: 0.03,
                local_activity_boost: 2.0,
                activity_theta: 0.6,
            },
            timing: SessionTiming::default(),
            duration_days: 30,
            sessions_per_day: 400,
            media_sizes: true,
            link_churn_per_day: 0.0,
            server_theta: 0.0,
        }
    }

    /// A multi-server cluster preset for the dissemination experiments:
    /// `n` servers of varying popularity behind a shared hierarchy.
    pub fn cluster(seed: u64, n_servers: usize) -> TraceConfig {
        TraceConfig {
            seed,
            n_servers,
            site: SiteGraphConfig {
                n_pages: 200,
                ..SiteGraphConfig::default()
            },
            clients: ClientConfig {
                n_clients: 3_000,
                local_fraction: 0.15,
                local_activity_boost: 3.0,
                activity_theta: 0.7,
            },
            timing: SessionTiming::default(),
            duration_days: 30,
            sessions_per_day: 300,
            media_sizes: false,
            link_churn_per_day: 0.0,
            server_theta: 0.8,
        }
    }

    /// A small, fast preset for tests.
    pub fn small(seed: u64) -> TraceConfig {
        TraceConfig {
            seed,
            n_servers: 1,
            site: SiteGraphConfig {
                n_pages: 60,
                mean_embedded: 0.8,
                max_links: 4,
                zipf_theta: 0.9,
                assortativity: 0.9,
                shared_object_pool: 10,
                shared_frac: 0.7,
            },
            clients: ClientConfig {
                n_clients: 80,
                local_fraction: 0.25,
                local_activity_boost: 3.0,
                activity_theta: 0.7,
            },
            timing: SessionTiming::default(),
            duration_days: 10,
            sessions_per_day: 40,
            media_sizes: false,
            link_churn_per_day: 0.0,
            server_theta: 0.0,
        }
    }
}

/// Upper bound on `duration_days × sessions_per_day`: far above any
/// realistic workload (a century of a million sessions a day), but low
/// enough that every derived product (`× ~12 accesses × size_of::<Access>`)
/// stays inside `u64` arithmetic.
pub const MAX_TOTAL_SESSIONS: u64 = 1 << 40;

/// Upper bound on the simulated duration alone: almost three millennia.
/// `MAX_TOTAL_SESSIONS` caps the *product*, but with
/// `sessions_per_day == 0` the product check passes vacuously while
/// per-day structures (churn snapshots, day shards) still allocate one
/// slot per day — so the day count needs its own ceiling.
pub const MAX_DURATION_DAYS: u64 = 1 << 20;

/// The trace generator.
#[derive(Debug)]
pub struct TraceGenerator {
    cfg: TraceConfig,
    /// Optional observability bundle: generation volume counters land
    /// here, per run — a process-global counter would double-count when
    /// one process generates several traces (every multi-config sweep
    /// does).
    obs: Option<specweb_core::obs::Obs>,
}

impl TraceGenerator {
    /// Creates a generator.
    pub fn new(cfg: TraceConfig) -> Result<Self> {
        if cfg.n_servers == 0 {
            return Err(specweb_core::CoreError::invalid_config(
                "trace.n_servers",
                "must be positive",
            ));
        }
        if cfg.duration_days == 0 {
            return Err(specweb_core::CoreError::invalid_config(
                "trace.duration_days",
                "must be positive",
            ));
        }
        if cfg.duration_days > MAX_DURATION_DAYS {
            return Err(specweb_core::CoreError::invalid_config(
                "trace.duration_days",
                "exceeds MAX_DURATION_DAYS (1 << 20)",
            ));
        }
        if !(0.0..=1.0).contains(&cfg.link_churn_per_day) {
            return Err(specweb_core::CoreError::invalid_config(
                "trace.link_churn_per_day",
                "must be in [0, 1]",
            ));
        }
        // The total session count feeds capacity preallocations and the
        // arithmetic session ids; an unchecked product here is how the
        // old code could over-allocate gigabytes (or overflow `usize` on
        // 32-bit hosts) at million-client scale.
        match cfg.duration_days.checked_mul(cfg.sessions_per_day as u64) {
            Some(total) if total <= MAX_TOTAL_SESSIONS => {}
            _ => {
                return Err(specweb_core::CoreError::invalid_config(
                    "trace.duration_days × trace.sessions_per_day",
                    "session volume overflows the generator's bound",
                ));
            }
        }
        Ok(TraceGenerator { cfg, obs: None })
    }

    /// The configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Attaches an observability bundle: each [`TraceGenerator::generate`]
    /// records its own `trace.accesses_generated` /
    /// `trace.sessions_generated` into it (deterministic channel).
    /// Clones share state, so the caller snapshots its own handle.
    pub fn with_obs(mut self, obs: &specweb_core::obs::Obs) -> Self {
        self.obs = Some(obs.clone());
        self
    }

    /// Generates the trace over the given topology (clients attach to
    /// its leaves), fanning days out over the process-default worker
    /// count. Byte-identical for any worker count.
    pub fn generate(&self, topo: &Topology) -> Result<Trace> {
        self.generate_with_jobs(topo, specweb_core::par::default_jobs())
    }

    /// [`TraceGenerator::generate`] with an explicit worker count.
    ///
    /// Each day is an independent work item: its sessions draw from
    /// `seed.child_idx("day-sessions", day)`, its session ids are `day ×
    /// sessions_per_day + i`, and it reads the site-graph snapshot the
    /// sequential churn fold produced for that day. The per-day shards
    /// are merged in day order, so the result does not depend on `jobs`.
    pub fn generate_with_jobs(&self, topo: &Topology, jobs: usize) -> Result<Trace> {
        let cfg = &self.cfg;
        let seed = SeedTree::new(cfg.seed);
        let sizes = if cfg.media_sizes {
            SizeModel::media_1995()?
        } else {
            SizeModel::web_1995()?
        };

        // Catalog + site graphs.
        let mut catalog = Catalog::new();
        let mut graphs = Vec::with_capacity(cfg.n_servers);
        for s in 0..cfg.n_servers {
            graphs.push(SiteGraph::generate(
                &seed,
                ServerId::from(s),
                &cfg.site,
                &sizes,
                &mut catalog,
            )?);
        }

        // Clients.
        let clients = ClientPopulation::generate(&seed, topo, &cfg.clients)?;

        // Which server a session lands on.
        let server_zipf = Zipf::new(cfg.n_servers, cfg.server_theta)?;

        // Site evolution is a *sequential* fold over day boundaries:
        // day d's sessions must see the graph after exactly d churn
        // rounds. Snapshot the pre-churn state per day, then hand the
        // snapshots to the sharded days; the fold's end state is the
        // trace's final graph. Without churn every day shares the base
        // graphs and nothing is cloned.
        let day_graphs: Option<Vec<Vec<SiteGraph>>> = if cfg.link_churn_per_day > 0.0 {
            let mut snapshots = Vec::with_capacity(usize::try_from(cfg.duration_days).unwrap_or(0));
            for day in 0..cfg.duration_days {
                snapshots.push(graphs.clone());
                let mut churn_rng = seed.child_idx("churn", day).rng();
                for g in &mut graphs {
                    g.churn_links(&mut churn_rng, cfg.link_churn_per_day, cfg.site.zipf_theta);
                }
            }
            Some(snapshots)
        } else {
            None
        };

        let spd = cfg.sessions_per_day as u64;
        // Per-day preallocation: checked (satellite of the unchecked
        // `days × sessions × 12` multiply) and capped, so a huge
        // configuration degrades to amortized growth instead of a
        // gigabyte up-front reservation.
        let day_capacity = cfg
            .sessions_per_day
            .checked_mul(12)
            .map_or(1 << 20, |n| n.min(1 << 20));
        let days: Vec<u64> = (0..cfg.duration_days).collect();
        let day_shards: Vec<Vec<Access>> =
            specweb_core::par::par_map_indexed(jobs, &days, |_, &day| {
                let day_idx = usize::try_from(day).unwrap_or(usize::MAX);
                let graphs_today: &[SiteGraph] = day_graphs
                    .as_ref()
                    .map_or(&graphs[..], |snaps| &snaps[day_idx][..]);
                let mut rng = seed.child_idx("day-sessions", day).rng();
                let mut out: Vec<Access> = Vec::with_capacity(day_capacity);
                let day_start = SimTime::from_days(day);
                for i in 0..spd {
                    let start = day_start
                        // lint:allow(W1): SimTime + Duration saturates (time.rs Add impl)
                        + Duration::from_millis(rng.gen_range(0..Duration::DAY.as_millis()));
                    let client_id = clients.sample_client(&mut rng);
                    let client = *clients.get(client_id);
                    let server_idx = server_zipf.sample(&mut rng);
                    self.run_session(
                        &mut rng,
                        &graphs_today[server_idx],
                        &catalog,
                        client_id,
                        client.locality,
                        start,
                        day.saturating_mul(spd).saturating_add(i),
                        &mut out,
                    );
                }
                out
            });

        // Deterministic per-shard merge, in day order.
        let n_accesses: u64 = day_shards.iter().map(|s| s.len() as u64).sum();
        let mut accesses: Vec<Access> =
            Vec::with_capacity(usize::try_from(n_accesses).unwrap_or(0));
        for shard in day_shards {
            accesses.extend(shard);
        }
        accesses.sort_by_key(|a| (a.time, a.client, a.doc));
        let n_sessions = cfg.duration_days.saturating_mul(spd);

        // Per-run totals (deterministic channel): a pure function of the
        // configuration, merged from the day shards in day order.
        if let Some(obs) = &self.obs {
            obs.metrics
                .counter("trace.accesses_generated")
                .add(n_accesses);
            obs.metrics
                .counter("trace.sessions_generated")
                .add(n_sessions);
        }

        Ok(Trace {
            accesses,
            catalog,
            graphs,
            clients,
            duration: Duration::from_days(cfg.duration_days),
            n_sessions,
        })
    }

    /// Simulates one browsing session: strides of page visits connected
    /// by link follows, with embedded objects fetched right after each
    /// page.
    #[allow(clippy::too_many_arguments)]
    fn run_session<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        graph: &SiteGraph,
        catalog: &Catalog,
        client: ClientId,
        locality: Locality,
        start: SimTime,
        session: u64,
        out: &mut Vec<Access>,
    ) {
        let timing = &self.cfg.timing;
        let server = graph.server();
        let mut t = start;
        let mut page = graph.sample_entry(rng, catalog, |c| locality.class_bias(c));
        let n_strides = timing.sample_session_strides(rng);
        // The browser's in-session memory cache (every 1995 browser had
        // one): an embedded object is requested — and thus appears in
        // the server log — at most once per session. This is what keeps
        // a *shared* icon's measured p[page → icon] well below 1, while
        // page-unique embeddings stay certain.
        let mut session_fetched: std::collections::BTreeSet<DocId> =
            std::collections::BTreeSet::new();

        for stride in 0..n_strides {
            if stride > 0 {
                t += timing.sample_inter_gap(rng);
            }
            let stride_len = timing.sample_stride_len(rng);
            for visit in 0..stride_len {
                if visit > 0 {
                    t += timing.sample_intra_gap(rng);
                }
                // Fetch the page, then its not-yet-fetched embedded
                // objects in quick succession (well inside the 5 s
                // window, so the analyzer sees them as dependencies).
                for (k, doc) in graph.visit_docs(page).enumerate() {
                    if k > 0 && !session_fetched.insert(doc) {
                        continue; // browser memory cache hit
                    }
                    out.push(Access {
                        time: t + Duration::from_millis(50 * k as u64),
                        client,
                        doc,
                        server,
                        locality,
                        session,
                    });
                }
                // Follow a link for the next visit. The anchor choice is
                // uniform (the 1/k behaviour of Fig. 4), but whether the
                // client *pursues* an off-taste target is class-biased:
                // a remote user who lands on a campus-internal page backs
                // off to a fresh entry point. Dead ends also restart.
                page = match graph.follow_link(rng, page) {
                    Some(next) => {
                        let cls = catalog.get(graph.page(next).doc).class;
                        let stick = locality.class_bias(cls).sqrt();
                        if rng.gen::<f64>() <= stick {
                            next
                        } else {
                            graph.sample_entry(rng, catalog, |c| locality.class_bias(c))
                        }
                    }
                    None => graph.sample_entry(rng, catalog, |c| locality.class_bias(c)),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace(seed: u64) -> Trace {
        let topo = Topology::balanced(2, 3, 4);
        TraceGenerator::new(TraceConfig::small(seed))
            .unwrap()
            .generate(&topo)
            .unwrap()
    }

    #[test]
    fn generates_nonempty_ordered_trace() {
        let t = small_trace(100);
        assert!(!t.is_empty());
        assert!(t.n_sessions > 0);
        for w in t.accesses.windows(2) {
            assert!(w[0].time <= w[1].time, "trace must be time-ordered");
        }
        // All ids are valid.
        for a in &t.accesses {
            assert!(a.doc.index() < t.catalog.len());
            assert!(a.client.index() < t.clients.len());
            assert_eq!(t.catalog.get(a.doc).server, a.server);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = small_trace(42);
        let b = small_trace(42);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.accesses, b.accesses);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_trace(1);
        let b = small_trace(2);
        assert_ne!(a.accesses, b.accesses);
    }

    #[test]
    fn popularity_is_skewed() {
        let t = small_trace(7);
        let mut counts = t.request_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top10 = counts.len() / 10;
        let head: u64 = counts[..top10].iter().sum();
        // The top 10% of documents should draw well over a third of all
        // requests even in a small trace (the paper measured 91% at the
        // byte level for the real server).
        assert!(
            head as f64 / total as f64 > 0.35,
            "head share {}",
            head as f64 / total as f64
        );
    }

    #[test]
    fn locality_mix_present() {
        let t = small_trace(8);
        let remote = t
            .accesses
            .iter()
            .filter(|a| a.locality == Locality::Remote)
            .count();
        let local = t.len() - remote;
        assert!(remote > 0 && local > 0);
    }

    #[test]
    fn day_slices_partition_trace() {
        let t = small_trace(9);
        let total: usize = (0..10).map(|d| t.day_slice(d).len()).sum();
        assert_eq!(total, t.len());
        for a in t.day_slice(3) {
            assert_eq!(a.time.day(), 3);
        }
        assert!(t.day_slice(99).is_empty());
    }

    #[test]
    fn embedded_objects_follow_their_page_closely() {
        let t = small_trace(10);
        // Find a page with embedded objects and check that every access
        // to the page is immediately followed by its objects.
        let g = &t.graphs[0];
        let page = g.pages().iter().find(|p| !p.embedded.is_empty());
        let Some(page) = page else {
            return;
        };
        let mut found = 0;
        for (i, a) in t.accesses.iter().enumerate() {
            if a.doc == page.doc {
                // Scan the next few accesses of the same client for the
                // first embedded object.
                let emb = page.embedded[0];
                let ok = t.accesses[i + 1..]
                    .iter()
                    .take(20)
                    .any(|b| b.client == a.client && b.doc == emb);
                if ok {
                    found += 1;
                }
            }
        }
        assert!(found > 0, "no page→embedded pairs found in trace");
    }

    #[test]
    fn multi_server_traces_cover_all_servers() {
        let topo = Topology::balanced(2, 3, 4);
        let cfg = TraceConfig {
            n_servers: 4,
            ..TraceConfig::small(11)
        };
        let t = TraceGenerator::new(cfg).unwrap().generate(&topo).unwrap();
        let mut seen = [false; 4];
        for a in &t.accesses {
            seen[a.server.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "servers missing from trace");
        assert_eq!(t.graphs.len(), 4);
    }

    #[test]
    fn server_theta_skews_server_popularity() {
        let topo = Topology::balanced(2, 3, 4);
        let cfg = TraceConfig {
            n_servers: 4,
            server_theta: 1.2,
            ..TraceConfig::small(12)
        };
        let t = TraceGenerator::new(cfg).unwrap().generate(&topo).unwrap();
        let mut per_server = [0u64; 4];
        for a in &t.accesses {
            per_server[a.server.index()] += 1;
        }
        assert!(
            per_server[0] > per_server[3],
            "expected server popularity skew: {per_server:?}"
        );
    }

    #[test]
    fn sharded_generation_is_byte_identical_across_jobs() {
        // The tentpole contract: per-day seed children + the churn fold
        // make days independent work items, so the merged trace cannot
        // depend on the worker count — with or without churn.
        let topo = Topology::balanced(2, 3, 4);
        for churn in [0.0, 0.3] {
            let mut cfg = TraceConfig::small(77);
            cfg.link_churn_per_day = churn;
            let generator = TraceGenerator::new(cfg).unwrap();
            let serial = generator.generate_with_jobs(&topo, 1).unwrap();
            for jobs in [2, 4, 7] {
                let sharded = generator.generate_with_jobs(&topo, jobs).unwrap();
                assert_eq!(
                    serial.accesses, sharded.accesses,
                    "jobs={jobs} churn={churn}"
                );
                assert_eq!(serial.n_sessions, sharded.n_sessions);
                assert_eq!(serial.graphs.len(), sharded.graphs.len());
            }
        }
    }

    #[test]
    fn session_ids_are_arithmetic_u64() {
        // Satellite pin: session ids are `day × sessions_per_day + i` as
        // u64 — no wrapping counter. Every id below the total must occur,
        // and the total is the arithmetic product.
        let t = small_trace(21);
        let spd = 40u64; // TraceConfig::small
        assert_eq!(t.n_sessions, 10 * spd);
        let mut seen = vec![false; t.n_sessions as usize];
        for a in &t.accesses {
            assert!(a.session < t.n_sessions);
            seen[a.session as usize] = true;
            // A session started on day d: its id encodes that day.
            assert!(a.time.day() >= a.session / spd);
        }
        assert!(seen.iter().all(|&s| s), "every session must leave accesses");
        // The field is u64: ids beyond u32 range are representable.
        let big = Access {
            session: u64::from(u32::MAX) + 1,
            ..t.accesses[0]
        };
        assert!(big.session > u64::from(u32::MAX));
    }

    #[test]
    fn day_slice_boundaries() {
        let t = small_trace(22);
        // First day: starts at the first access.
        let first = t.day_slice(0);
        assert!(!first.is_empty());
        assert_eq!(first[0], t.accesses[0]);
        // Last populated day ends at the last access.
        let last_day = t.accesses.last().unwrap().time.day();
        let last = t.day_slice(last_day);
        assert!(!last.is_empty());
        assert_eq!(*last.last().unwrap(), *t.accesses.last().unwrap());
        // Empty day: past the end of the trace.
        assert!(t.day_slice(last_day + 1).is_empty());
        assert!(t.day_slice(last_day + 1_000).is_empty());
        // The slices tile the whole trace with no gaps or overlaps.
        let total: usize = (0..=last_day).map(|d| t.day_slice(d).len()).sum();
        assert_eq!(total, t.len());
    }

    #[test]
    fn obs_accounts_generation_per_run() {
        use specweb_core::obs::{MetricValue, Obs};
        let topo = Topology::balanced(2, 3, 4);
        let obs = Obs::new();
        let generator = TraceGenerator::new(TraceConfig::small(23))
            .unwrap()
            .with_obs(&obs);
        let t = generator.generate(&topo).unwrap();
        let counter = |snap: &specweb_core::obs::MetricSnapshot, name: &str| match snap
            .deterministic
            .get(name)
        {
            Some(MetricValue::Counter { value }) => *value,
            other => panic!("missing counter {name}: {other:?}"),
        };
        let snap = obs.snapshot();
        assert_eq!(counter(&snap, "trace.accesses_generated"), t.len() as u64);
        assert_eq!(counter(&snap, "trace.sessions_generated"), t.n_sessions);
        // A second generation against the same bundle adds — the caller
        // owns the bundle's scope, so multi-trace sweeps that want
        // per-trace numbers attach a fresh bundle per run.
        generator.generate(&topo).unwrap();
        let snap2 = obs.snapshot();
        assert_eq!(
            counter(&snap2, "trace.accesses_generated"),
            2 * t.len() as u64
        );
        // Without a bundle nothing global accumulates: two different
        // traces in one process can no longer double-count.
        let unobserved = TraceGenerator::new(TraceConfig::small(23)).unwrap();
        let before = specweb_core::obs::global()
            .snapshot()
            .deterministic
            .get("trace.accesses_generated")
            .cloned();
        unobserved.generate(&topo).unwrap();
        let after = specweb_core::obs::global()
            .snapshot()
            .deterministic
            .get("trace.accesses_generated")
            .cloned();
        assert_eq!(before, after);
    }

    #[test]
    fn rejects_session_volume_overflow() {
        // The unchecked `days × sessions × 12` preallocation is gone:
        // absurd volumes are a configuration error, not an allocation.
        let mut cfg = TraceConfig::small(1);
        cfg.duration_days = u64::MAX / 2;
        cfg.sessions_per_day = 3;
        assert!(TraceGenerator::new(cfg).is_err());
        let mut cfg = TraceConfig::small(1);
        cfg.duration_days = 1 << 30;
        cfg.sessions_per_day = 1 << 20;
        assert!(TraceGenerator::new(cfg).is_err());
        // A merely-large configuration still validates.
        let mut cfg = TraceConfig::small(1);
        cfg.duration_days = 36_500;
        cfg.sessions_per_day = 1_000_000;
        assert!(TraceGenerator::new(cfg).is_ok());
    }

    /// Regression for the day-count ceiling: `sessions_per_day == 0`
    /// makes the session-volume product check pass vacuously, but the
    /// per-day structures (churn snapshots, day shards) still allocate
    /// one slot per day — the day count needs its own bound.
    #[test]
    fn rejects_absurd_day_count_even_with_zero_sessions() {
        let mut cfg = TraceConfig::small(1);
        cfg.duration_days = MAX_DURATION_DAYS + 1;
        cfg.sessions_per_day = 0;
        assert!(TraceGenerator::new(cfg).is_err());
        let mut cfg = TraceConfig::small(1);
        cfg.duration_days = MAX_DURATION_DAYS;
        cfg.sessions_per_day = 0;
        assert!(TraceGenerator::new(cfg).is_ok());
    }

    #[test]
    fn rejects_bad_config() {
        let mut cfg = TraceConfig::small(1);
        cfg.n_servers = 0;
        assert!(TraceGenerator::new(cfg).is_err());
        let mut cfg = TraceConfig::small(1);
        cfg.duration_days = 0;
        assert!(TraceGenerator::new(cfg).is_err());
        let mut cfg = TraceConfig::small(1);
        cfg.link_churn_per_day = 2.0;
        assert!(TraceGenerator::new(cfg).is_err());
    }

    #[test]
    fn churn_changes_future_sessions_not_past() {
        let topo = Topology::balanced(2, 3, 4);
        let mut cfg = TraceConfig::small(13);
        cfg.link_churn_per_day = 0.5;
        let t1 = TraceGenerator::new(cfg.clone())
            .unwrap()
            .generate(&topo)
            .unwrap();
        cfg.link_churn_per_day = 0.0;
        let t2 = TraceGenerator::new(cfg).unwrap().generate(&topo).unwrap();
        // Day 0 is identical (churn applies at day boundaries)…
        assert_eq!(t1.day_slice(0), t2.day_slice(0));
        // …but later days diverge.
        assert_ne!(t1.accesses, t2.accesses);
    }

    #[test]
    fn active_clients_counted() {
        let t = small_trace(14);
        let n = t.active_clients();
        assert!(n > 0 && n <= t.clients.len());
    }

    #[test]
    fn total_requested_bytes_positive() {
        let t = small_trace(15);
        assert!(t.total_requested_bytes() > Bytes::ZERO);
    }
}
