//! A Common-Log-Format-style serialization of traces.
//!
//! The paper's pipeline begins with HTTPd logs. To make the rest of the
//! system runnable against *real* logs (and to exercise the cleaning
//! pipeline on realistic input), traces can be written to and read from
//! a CLF-like line format:
//!
//! ```text
//! client42 - - [123456789] "GET /doc/17 HTTP/1.0" 200 5120
//! ```
//!
//! where the timestamp is milliseconds since trace start, and the path
//! encodes the document id. The reader tolerates and reports malformed
//! lines (real logs are full of them); the cleaning pass in
//! [`crate::cleaning`] then applies the paper's preprocessing.

use specweb_core::ids::{ClientId, DocId};
use specweb_core::time::SimTime;
use specweb_core::units::Bytes;
use specweb_core::{CoreError, Result};

/// One parsed log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// The requesting client.
    pub client: ClientId,
    /// Request time.
    pub time: SimTime,
    /// HTTP method (only `GET` is meaningful to the simulators).
    pub method: String,
    /// Request path, e.g. `/doc/17` or `/cgi-bin/form.cgi`.
    pub path: String,
    /// HTTP status code.
    pub status: u16,
    /// Response size in bytes.
    pub size: Bytes,
}

impl LogRecord {
    /// The canonical path for a document id.
    pub fn doc_path(doc: DocId) -> String {
        format!("/doc/{}", doc.raw())
    }

    /// Extracts the document id from a canonical `/doc/N` path, if the
    /// path has that shape.
    pub fn doc_from_path(path: &str) -> Option<DocId> {
        path.strip_prefix("/doc/")
            .and_then(|s| s.parse::<u32>().ok())
            .map(DocId::new)
    }

    /// Renders this record as a log line.
    pub fn to_line(&self) -> String {
        format!(
            "client{} - - [{}] \"{} {} HTTP/1.0\" {} {}",
            self.client.raw(),
            self.time.as_millis(),
            self.method,
            self.path,
            self.status,
            self.size.get()
        )
    }

    /// Parses one log line. `lineno` is used for error reporting.
    pub fn parse(line: &str, lineno: usize) -> Result<LogRecord> {
        let err = |why: &str| CoreError::parse(lineno, why.to_string());

        let rest = line
            .strip_prefix("client")
            .ok_or_else(|| err("missing `client` prefix"))?;
        let (client_str, rest) = rest
            .split_once(' ')
            .ok_or_else(|| err("truncated after client"))?;
        let client: u32 = client_str
            .parse()
            .map_err(|_| err("client id is not a number"))?;

        let lb = rest.find('[').ok_or_else(|| err("missing `[`"))?;
        let rb = rest.find(']').ok_or_else(|| err("missing `]`"))?;
        if rb <= lb {
            return Err(err("brackets out of order"));
        }
        let time: u64 = rest[lb + 1..rb]
            .parse()
            .map_err(|_| err("timestamp is not a number"))?;

        let after = &rest[rb + 1..];
        let q1 = after
            .find('"')
            .ok_or_else(|| err("missing request quote"))?;
        let q2 = after[q1 + 1..]
            .find('"')
            .map(|i| i + q1 + 1)
            .ok_or_else(|| err("unterminated request"))?;
        let request = &after[q1 + 1..q2];
        let mut req_parts = request.split_whitespace();
        let method = req_parts.next().ok_or_else(|| err("empty request"))?;
        let path = req_parts.next().ok_or_else(|| err("request has no path"))?;

        let tail = after[q2 + 1..].trim();
        let mut tail_parts = tail.split_whitespace();
        let status: u16 = tail_parts
            .next()
            .ok_or_else(|| err("missing status"))?
            .parse()
            .map_err(|_| err("status is not a number"))?;
        let size: u64 = match tail_parts.next() {
            // Real CLF uses `-` for "no body".
            Some("-") | None => 0,
            Some(s) => s.parse().map_err(|_| err("size is not a number"))?,
        };

        Ok(LogRecord {
            client: ClientId::new(client),
            time: SimTime::from_millis(time),
            method: method.to_string(),
            path: path.to_string(),
            status,
            size: Bytes::new(size),
        })
    }
}

/// Writes a trace's accesses as log lines.
pub fn write_log(trace: &crate::generator::Trace) -> String {
    let mut out = String::with_capacity(trace.len().saturating_mul(64));
    for a in &trace.accesses {
        let rec = LogRecord {
            client: a.client,
            time: a.time,
            method: "GET".to_string(),
            path: LogRecord::doc_path(a.doc),
            status: 200,
            size: trace.catalog.size(a.doc),
        };
        out.push_str(&rec.to_line());
        out.push('\n');
    }
    out
}

/// Parses a whole log, returning the good records and the line numbers
/// of malformed ones (real logs always contain a few).
pub fn parse_log(text: &str) -> (Vec<LogRecord>, Vec<usize>) {
    let mut records = Vec::new();
    let mut bad = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        match LogRecord::parse(line, lineno) {
            Ok(r) => records.push(r),
            Err(_) => bad.push(lineno),
        }
    }
    (records, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> LogRecord {
        LogRecord {
            client: ClientId::new(42),
            time: SimTime::from_millis(123_456_789),
            method: "GET".into(),
            path: "/doc/17".into(),
            status: 200,
            size: Bytes::new(5_120),
        }
    }

    #[test]
    fn roundtrip() {
        let r = record();
        let line = r.to_line();
        assert_eq!(
            line,
            "client42 - - [123456789] \"GET /doc/17 HTTP/1.0\" 200 5120"
        );
        let parsed = LogRecord::parse(&line, 1).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn doc_path_roundtrip() {
        let p = LogRecord::doc_path(DocId(9));
        assert_eq!(p, "/doc/9");
        assert_eq!(LogRecord::doc_from_path(&p), Some(DocId(9)));
        assert_eq!(LogRecord::doc_from_path("/cgi-bin/x.cgi"), None);
        assert_eq!(LogRecord::doc_from_path("/doc/notanum"), None);
    }

    #[test]
    fn parses_dash_size() {
        let line = "client1 - - [100] \"GET /doc/1 HTTP/1.0\" 304 -";
        let r = LogRecord::parse(line, 1).unwrap();
        assert_eq!(r.size, Bytes::ZERO);
        assert_eq!(r.status, 304);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "garbage",
            "client1 - - [x] \"GET / HTTP/1.0\" 200 1",
            "client1 - - [100] \"GET\" 200 1",
            "client1 - - [100] \"GET / HTTP/1.0\" abc 1",
            "clientX - - [100] \"GET / HTTP/1.0\" 200 1",
            "client1 - - 100] \"GET / HTTP/1.0\" 200 1",
            "client1 - - [100] GET / HTTP/1.0 200 1",
        ] {
            assert!(LogRecord::parse(bad, 7).is_err(), "should reject: {bad:?}");
        }
        // Errors carry the line number.
        let e = LogRecord::parse("garbage", 7).unwrap_err();
        assert!(e.to_string().contains("line 7"), "{e}");
    }

    #[test]
    fn parse_log_separates_good_and_bad() {
        let text = "client1 - - [100] \"GET /doc/1 HTTP/1.0\" 200 10\n\
                    this line is broken\n\
                    \n\
                    client2 - - [200] \"GET /doc/2 HTTP/1.0\" 404 0\n";
        let (recs, bad) = parse_log(text);
        assert_eq!(recs.len(), 2);
        assert_eq!(bad, vec![2]);
    }

    #[test]
    fn write_then_parse_full_trace() {
        use crate::generator::{TraceConfig, TraceGenerator};
        use specweb_netsim::topology::Topology;
        let topo = Topology::balanced(2, 2, 3);
        let trace = TraceGenerator::new(TraceConfig::small(50))
            .unwrap()
            .generate(&topo)
            .unwrap();
        let text = write_log(&trace);
        let (recs, bad) = parse_log(&text);
        assert!(bad.is_empty());
        assert_eq!(recs.len(), trace.len());
        for (rec, acc) in recs.iter().zip(&trace.accesses) {
            assert_eq!(rec.client, acc.client);
            assert_eq!(rec.time, acc.time);
            assert_eq!(LogRecord::doc_from_path(&rec.path), Some(acc.doc));
            assert_eq!(rec.size, trace.catalog.size(acc.doc));
        }
    }
}
