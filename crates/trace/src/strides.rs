//! Stride and session analysis (§3.2).
//!
//! The paper segments each client's request stream into *traversal
//! strides* (gaps < `StrideTimeout`, baseline 5 s) nested inside
//! *sessions* (gaps < `SessionTimeout`). The trace generator plants
//! sessions with known ids; this module **re-derives** them from timing
//! alone — the way a server, which only sees its log, must — and is
//! validated against the generator's ground truth.
//!
//! The paper's trace: 205,925 accesses from 8,474 clients formed
//! "over 20,000 sessions".

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use specweb_core::ids::ClientId;
use specweb_core::stats::StreamingStats;
use specweb_core::time::{split_strides, Duration, SimTime};

use crate::generator::{Access, Trace};

/// One derived segment (stride or session) of one client's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// The client.
    pub client: ClientId,
    /// Index of the first access (into the client's own stream).
    pub start: usize,
    /// One past the last access.
    pub end: usize,
    /// Time of the first access.
    pub begin_time: SimTime,
    /// Time of the last access.
    pub end_time: SimTime,
}

impl Segment {
    /// Number of accesses in the segment.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the segment is empty (never produced by the analyzer).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Wall-clock span of the segment.
    pub fn span(&self) -> Duration {
        self.end_time.since(self.begin_time)
    }
}

/// Summary statistics of a segmentation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentationSummary {
    /// Total segments found.
    pub count: usize,
    /// Accesses per segment.
    pub lengths: StreamingStats,
    /// Wall-clock span per segment, in seconds.
    pub spans_secs: StreamingStats,
    /// Clients with at least one segment.
    pub active_clients: usize,
}

/// Segments every client's stream by a gap `timeout` and returns all
/// segments, client-major, time-ordered within client.
pub fn segment(trace: &Trace, timeout: Duration) -> Vec<Segment> {
    // Group accesses per client (the trace is time-ordered overall, so
    // per-client substreams stay ordered).
    let mut per_client: BTreeMap<ClientId, Vec<&Access>> = BTreeMap::new();
    for a in &trace.accesses {
        per_client.entry(a.client).or_default().push(a);
    }
    let mut out = Vec::new();
    for (&c, stream) in &per_client {
        let times: Vec<SimTime> = stream.iter().map(|a| a.time).collect();
        for (s, e) in split_strides(&times, timeout) {
            out.push(Segment {
                client: c,
                start: s,
                end: e,
                begin_time: times[s],
                end_time: times[e - 1],
            });
        }
    }
    out
}

/// Summarizes a segmentation.
pub fn summarize(segments: &[Segment]) -> SegmentationSummary {
    let mut lengths = StreamingStats::new();
    let mut spans = StreamingStats::new();
    let mut clients = std::collections::BTreeSet::new();
    for s in segments {
        lengths.push(s.len() as f64);
        spans.push(s.span().as_secs_f64());
        clients.insert(s.client);
    }
    SegmentationSummary {
        count: segments.len(),
        lengths,
        spans_secs: spans,
        active_clients: clients.len(),
    }
}

/// Compares a derived session segmentation against the generator's
/// ground-truth session ids: the fraction of derived segments whose
/// accesses all carry a single ground-truth session id (pure segments).
///
/// Only meaningful for *session*-scale timeouts; strides deliberately
/// split sessions further (every stride is session-pure, but a session
/// segment covering two generator sessions is not).
pub fn session_purity(trace: &Trace, segments: &[Segment]) -> f64 {
    if segments.is_empty() {
        return 0.0;
    }
    // Rebuild per-client streams exactly as `segment` does.
    let mut per_client: BTreeMap<ClientId, Vec<&Access>> = BTreeMap::new();
    for a in &trace.accesses {
        per_client.entry(a.client).or_default().push(a);
    }
    let mut pure = 0usize;
    for s in segments {
        let stream = &per_client[&s.client];
        let first = stream[s.start].session;
        if stream[s.start..s.end].iter().all(|a| a.session == first) {
            pure += 1;
        }
    }
    pure as f64 / segments.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};
    use specweb_netsim::topology::Topology;

    fn trace() -> Trace {
        let topo = Topology::balanced(2, 3, 4);
        let mut cfg = TraceConfig::small(300);
        cfg.duration_days = 8;
        cfg.sessions_per_day = 50;
        TraceGenerator::new(cfg).unwrap().generate(&topo).unwrap()
    }

    #[test]
    fn segments_partition_each_client_stream() {
        let t = trace();
        let segs = segment(&t, Duration::from_secs(5));
        // Sum of segment lengths = total accesses.
        let total: usize = segs.iter().map(Segment::len).sum();
        assert_eq!(total, t.len());
        // Segments of one client don't overlap and are ordered.
        let mut per_client: BTreeMap<ClientId, Vec<&Segment>> = BTreeMap::new();
        for s in &segs {
            per_client.entry(s.client).or_default().push(s);
        }
        for (_, ss) in per_client {
            for w in ss.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(w[0].end_time <= w[1].begin_time);
            }
        }
    }

    #[test]
    fn stride_segments_respect_the_timeout() {
        let t = trace();
        let timeout = Duration::from_secs(5);
        let segs = segment(&t, timeout);
        let mut per_client: BTreeMap<ClientId, Vec<&Access>> = BTreeMap::new();
        for a in &t.accesses {
            per_client.entry(a.client).or_default().push(a);
        }
        for s in &segs {
            let stream = &per_client[&s.client];
            // Inside: every gap < timeout.
            for w in stream[s.start..s.end].windows(2) {
                assert!(w[1].time.since(w[0].time) < timeout);
            }
            // Boundary: the gap to the next segment is ≥ timeout.
            if s.end < stream.len() {
                assert!(stream[s.end].time.since(stream[s.end - 1].time) >= timeout);
            }
        }
    }

    #[test]
    fn session_timeout_recovers_generated_sessions() {
        let t = trace();
        // A 30-minute timeout sits far above intra-session pauses
        // (≤ 30 min clamp) is exactly the clamp — use 31 min.
        let segs = segment(&t, Duration::from_secs(31 * 60));
        let purity = session_purity(&t, &segs);
        // Sessions of one client can still merge if two of its sessions
        // happen to start close together; purity is high, not perfect.
        assert!(purity > 0.8, "session purity {purity}");
        // Derived session count is in the right ballpark of the ground
        // truth *for sessions that have any accesses*.
        let n_sessions_truth: std::collections::HashSet<u64> =
            t.accesses.iter().map(|a| a.session).collect();
        let ratio = segs.len() as f64 / n_sessions_truth.len() as f64;
        assert!(
            (0.5..=1.5).contains(&ratio),
            "derived {} vs truth {}",
            segs.len(),
            n_sessions_truth.len()
        );
    }

    #[test]
    fn strides_are_finer_than_sessions() {
        let t = trace();
        let strides = segment(&t, Duration::from_secs(5));
        let sessions = segment(&t, Duration::from_secs(1_800));
        assert!(strides.len() > sessions.len());
        // Every stride lies within one session segment.
        let mut sess_by_client: BTreeMap<ClientId, Vec<&Segment>> = BTreeMap::new();
        for s in &sessions {
            sess_by_client.entry(s.client).or_default().push(s);
        }
        for st in &strides {
            let ss = &sess_by_client[&st.client];
            assert!(
                ss.iter().any(|s| s.start <= st.start && st.end <= s.end),
                "stride {st:?} crosses session boundaries"
            );
        }
    }

    #[test]
    fn summary_statistics() {
        let t = trace();
        let segs = segment(&t, Duration::from_secs(5));
        let sum = summarize(&segs);
        assert_eq!(sum.count, segs.len());
        assert!(sum.lengths.mean() >= 1.0);
        assert!(sum.active_clients > 0);
        assert!(sum.active_clients <= t.clients.len());
        // Stride spans are bounded by construction (intra gaps < 5 s,
        // stride length bounded) — sanity-check the mean.
        assert!(sum.spans_secs.mean() < 120.0);
    }

    #[test]
    fn zero_timeout_yields_singletons() {
        let t = trace();
        let segs = segment(&t, Duration::ZERO);
        assert_eq!(segs.len(), t.len());
        assert!(segs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn infinite_timeout_yields_one_segment_per_client() {
        let t = trace();
        let segs = segment(&t, Duration::INFINITE);
        assert_eq!(segs.len(), t.active_clients());
    }
}
