//! The document catalog.
//!
//! Every simulated object — HTML page or embedded multimedia object
//! (the paper uses "document" for both, footnote 1) — has a home server,
//! a size drawn from a heavy-tailed distribution, a *popularity class*
//! (§2's remotely/locally/globally popular trichotomy) and a mutability
//! flag (frequent updates are confined to a small mutable subset).

use rand::Rng;
use serde::{Deserialize, Serialize};
use specweb_core::dist::BoundedPareto;
use specweb_core::ids::{DocId, ServerId};
use specweb_core::rng::SeedTree;
use specweb_core::units::Bytes;
use specweb_core::Result;

/// §2's access-geography classes, assigned by the remote-to-local access
/// ratio observed (or, for synthetic catalogs, intended):
/// remote ratio > 85% ⇒ `Remote`, < 15% ⇒ `Local`, else `Global`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PopularityClass {
    /// Remotely popular — consumed mostly from outside the organization.
    Remote,
    /// Locally popular — consumed mostly from inside.
    Local,
    /// Globally popular — consumed from both.
    Global,
}

impl PopularityClass {
    /// Classifies from an observed remote-access ratio using the
    /// paper's 85% / 15% thresholds.
    pub fn from_remote_ratio(ratio: f64) -> PopularityClass {
        if ratio > 0.85 {
            PopularityClass::Remote
        } else if ratio < 0.15 {
            PopularityClass::Local
        } else {
            PopularityClass::Global
        }
    }

    /// The paper's measured per-day update probability for this class:
    /// remote/global documents ≈ 0.5%/day, local ≈ 2%/day.
    pub fn daily_update_probability(self) -> f64 {
        match self {
            PopularityClass::Remote | PopularityClass::Global => 0.005,
            PopularityClass::Local => 0.02,
        }
    }
}

/// One document.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// The document's id (dense; doubles as a catalog index).
    pub id: DocId,
    /// The home server that produces this document.
    pub server: ServerId,
    /// Size in bytes.
    pub size: Bytes,
    /// Geographic popularity class.
    pub class: PopularityClass,
    /// Whether the document belongs to the small frequently-updated
    /// subset ("mutable documents", §2).
    pub mutable: bool,
    /// Whether this document is an HTML page (can embed and link) or an
    /// embedded object (image/audio; a pure leaf).
    pub is_page: bool,
}

/// The full document catalog, indexable by [`DocId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    docs: Vec<Document>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a document, assigning it the next dense id.
    pub fn push(
        &mut self,
        server: ServerId,
        size: Bytes,
        class: PopularityClass,
        mutable: bool,
        is_page: bool,
    ) -> DocId {
        let id = DocId::from(self.docs.len());
        self.docs.push(Document {
            id,
            server,
            size,
            class,
            mutable,
            is_page,
        });
        id
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Looks a document up by id.
    ///
    /// # Panics
    /// Panics on an unknown id — catalog ids are dense and produced only
    /// by [`Catalog::push`], so an unknown id is a logic error.
    pub fn get(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }

    /// The size of a document.
    pub fn size(&self, id: DocId) -> Bytes {
        self.docs[id.index()].size
    }

    /// All documents.
    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.docs.iter()
    }

    /// Documents belonging to `server`.
    pub fn of_server(&self, server: ServerId) -> impl Iterator<Item = &Document> {
        self.docs.iter().filter(move |d| d.server == server)
    }

    /// Total bytes in the catalog.
    pub fn total_bytes(&self) -> Bytes {
        self.docs.iter().map(|d| d.size).sum()
    }

    /// Counts documents per class as `(remote, local, global)`.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut r = 0;
        let mut l = 0;
        let mut g = 0;
        for d in &self.docs {
            match d.class {
                PopularityClass::Remote => r += 1,
                PopularityClass::Local => l += 1,
                PopularityClass::Global => g += 1,
            }
        }
        (r, l, g)
    }
}

/// Size model for generated documents. Pages and embedded objects get
/// separate bounded-Pareto distributions; see the constructors for the
/// calibrations.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SizeModel {
    page: BoundedPareto,
    object: BoundedPareto,
}

impl SizeModel {
    /// The default 1995-web calibration. Pages are heavy-tailed
    /// (256 B–2 MB, shape 1.2): most are small HTML, the tail is the
    /// postscript papers and tarballs that sat *behind links* on
    /// academic servers. Embedded objects are inline icons and small
    /// GIFs (128 B–64 KB, shape 1.3) — the big media of the era was
    /// linked, not inlined.
    pub fn web_1995() -> Result<Self> {
        Ok(SizeModel {
            page: BoundedPareto::new(1.15, 512.0, 1_048_576.0)?,
            object: BoundedPareto::new(1.4, 64.0, 16_384.0)?,
        })
    }

    /// A media-heavy calibration (Rolling-Stones-like site: large audio
    /// and video objects).
    pub fn media_1995() -> Result<Self> {
        Ok(SizeModel {
            page: BoundedPareto::new(1.4, 512.0, 65_536.0)?,
            object: BoundedPareto::new(1.1, 16_384.0, 16.0 * 1_048_576.0)?,
        })
    }

    /// Samples a page size.
    pub fn sample_page<R: Rng + ?Sized>(&self, rng: &mut R) -> Bytes {
        self.page.sample_bytes(rng)
    }

    /// Samples an embedded-object size.
    pub fn sample_object<R: Rng + ?Sized>(&self, rng: &mut R) -> Bytes {
        self.object.sample_bytes(rng)
    }
}

/// Draws a popularity class using the paper's measured proportions
/// (99 remote : 510 local : 365 global ≈ 10% : 52% : 38%).
pub fn sample_class<R: Rng + ?Sized>(rng: &mut R) -> PopularityClass {
    let u: f64 = rng.gen();
    if u < 0.10 {
        PopularityClass::Remote
    } else if u < 0.62 {
        PopularityClass::Local
    } else {
        PopularityClass::Global
    }
}

/// Decides mutability: frequent updates are confined to a very small
/// subset of documents — we mark ≈5% of a class as mutable.
pub fn sample_mutable<R: Rng + ?Sized>(rng: &mut R) -> bool {
    rng.gen::<f64>() < 0.05
}

/// Convenience: builds a catalog of `n_pages` pages (each with sizes from
/// `sizes`) for one server. Used by tests and the quickstart; the full
/// generator in [`crate::generator`] builds richer catalogs.
pub fn simple_catalog(seed: &SeedTree, server: ServerId, n_pages: usize) -> Result<Catalog> {
    let sizes = SizeModel::web_1995()?;
    let mut rng = seed.child("catalog").rng();
    let mut cat = Catalog::new();
    for _ in 0..n_pages {
        let class = sample_class(&mut rng);
        let mutable = sample_mutable(&mut rng);
        let size = sizes.sample_page(&mut rng);
        cat.push(server, size, class, mutable, true);
    }
    Ok(cat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_thresholds() {
        assert_eq!(
            PopularityClass::from_remote_ratio(0.9),
            PopularityClass::Remote
        );
        assert_eq!(
            PopularityClass::from_remote_ratio(0.1),
            PopularityClass::Local
        );
        assert_eq!(
            PopularityClass::from_remote_ratio(0.5),
            PopularityClass::Global
        );
        // Boundary cases: the paper's wording is strict ("larger than
        // 85%", "smaller than 15%").
        assert_eq!(
            PopularityClass::from_remote_ratio(0.85),
            PopularityClass::Global
        );
        assert_eq!(
            PopularityClass::from_remote_ratio(0.15),
            PopularityClass::Global
        );
    }

    #[test]
    fn update_probabilities_match_paper() {
        assert_eq!(PopularityClass::Remote.daily_update_probability(), 0.005);
        assert_eq!(PopularityClass::Global.daily_update_probability(), 0.005);
        assert_eq!(PopularityClass::Local.daily_update_probability(), 0.02);
    }

    #[test]
    fn catalog_push_and_lookup() {
        let mut c = Catalog::new();
        let a = c.push(
            ServerId(0),
            Bytes::new(100),
            PopularityClass::Global,
            false,
            true,
        );
        let b = c.push(
            ServerId(1),
            Bytes::new(200),
            PopularityClass::Local,
            true,
            false,
        );
        assert_eq!(c.len(), 2);
        assert_eq!(a, DocId(0));
        assert_eq!(b, DocId(1));
        assert_eq!(c.size(a), Bytes::new(100));
        assert_eq!(c.get(b).server, ServerId(1));
        assert!(c.get(b).mutable);
        assert!(!c.get(b).is_page);
        assert_eq!(c.total_bytes(), Bytes::new(300));
        assert_eq!(c.of_server(ServerId(0)).count(), 1);
    }

    #[test]
    fn class_counts() {
        let mut c = Catalog::new();
        for (class, n) in [
            (PopularityClass::Remote, 2),
            (PopularityClass::Local, 3),
            (PopularityClass::Global, 1),
        ] {
            for _ in 0..n {
                c.push(ServerId(0), Bytes::new(1), class, false, true);
            }
        }
        assert_eq!(c.class_counts(), (2, 3, 1));
    }

    #[test]
    fn size_model_ranges() {
        let m = SizeModel::web_1995().unwrap();
        let mut rng = SeedTree::new(5).child("sizes").rng();
        for _ in 0..1_000 {
            let p = m.sample_page(&mut rng).get();
            assert!((512..=1_048_576).contains(&p), "page size {p}");
            let o = m.sample_object(&mut rng).get();
            assert!((64..=16_384).contains(&o), "object size {o}");
        }
    }

    #[test]
    fn class_sampling_matches_paper_proportions() {
        let mut rng = SeedTree::new(6).child("classes").rng();
        let n = 50_000;
        let mut counts = (0usize, 0usize, 0usize);
        for _ in 0..n {
            match sample_class(&mut rng) {
                PopularityClass::Remote => counts.0 += 1,
                PopularityClass::Local => counts.1 += 1,
                PopularityClass::Global => counts.2 += 1,
            }
        }
        let f = |x: usize| x as f64 / n as f64;
        assert!((f(counts.0) - 0.10).abs() < 0.01, "remote {:?}", counts);
        assert!((f(counts.1) - 0.52).abs() < 0.01, "local {:?}", counts);
        assert!((f(counts.2) - 0.38).abs() < 0.01, "global {:?}", counts);
    }

    #[test]
    fn mutable_subset_is_small() {
        let mut rng = SeedTree::new(7).child("mut").rng();
        let n = 20_000;
        let m = (0..n).filter(|_| sample_mutable(&mut rng)).count();
        let frac = m as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.01, "mutable fraction {frac}");
    }

    #[test]
    fn simple_catalog_builds() {
        let seed = SeedTree::new(8);
        let c = simple_catalog(&seed, ServerId(3), 50).unwrap();
        assert_eq!(c.len(), 50);
        assert!(c.iter().all(|d| d.server == ServerId(3) && d.is_page));
        // Deterministic.
        let c2 = simple_catalog(&seed, ServerId(3), 50).unwrap();
        assert_eq!(c.total_bytes(), c2.total_bytes());
    }
}
