//! # specweb-trace
//!
//! Workload substrate for the `specweb` reproduction of Bestavros,
//! ICDE 1996. The paper's evaluation is **trace-driven**: 22 weeks of
//! HTTP logs from `cs-www.bu.edu` (205,925 accesses, 8,474 clients,
//! >20,000 sessions) drive both protocols. Those logs are not available,
//! > so this crate provides the documented substitution: a synthetic trace
//! > generator calibrated to every distributional property the paper
//! > reports, plus a log-file format and the paper's cleaning pipeline so
//! > real logs can be dropped in instead.
//!
//! Calibration targets (from the paper):
//!
//! * block popularity: the most popular 0.5% of bytes draw ≈69% of
//!   requests; the top 10% draw ≈91% (Fig. 1);
//! * document classes: of 974 accessed documents, 99 were *remotely
//!   popular* (remote-access ratio > 85%), 510 *locally popular*
//!   (< 15%), 365 *globally popular* (§2);
//! * update behaviour: ≈0.5%/day update probability for remote/global
//!   documents, ≈2%/day for local ones, frequent updates confined to a
//!   small *mutable* subset (§2);
//! * link structure: the conditional-probability histogram of Fig. 4
//!   peaks at 1/k — links out of a page are followed near-uniformly —
//!   with an embedding peak at p ≈ 1;
//! * sessions and strides: >20k sessions, strides defined by a 5 s
//!   `StrideTimeout` (§3.2).
//!
//! Modules:
//!
//! * [`document`] — the document catalog (sizes, classes, mutability);
//! * [`sitegraph`] — per-server site graphs: pages, embedded objects,
//!   traversal links;
//! * [`clients`] — the client population and its local/remote split;
//! * [`session`] — session/stride timing processes;
//! * [`generator`] — the top-level trace generator with `bu_www` and
//!   `media_site` presets;
//! * [`updates`] — the document-update process;
//! * [`strides`] — stride/session re-derivation from timing (§3.2's
//!   `StrideTimeout`/`SessionTimeout` segmentation);
//! * [`import`] — reconstructing a [`generator::Trace`] from real,
//!   parsed log records;
//! * [`logfmt`] — a Common-Log-Format-style reader/writer;
//! * [`cleaning`] — the paper's log preprocessing (footnote 6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cleaning;
pub mod clients;
pub mod document;
pub mod generator;
pub mod import;
pub mod logfmt;
pub mod session;
pub mod sitegraph;
pub mod strides;
pub mod updates;

pub use clients::{ClientPopulation, Locality};
pub use document::{Catalog, Document, PopularityClass};
pub use generator::{Access, Trace, TraceConfig, TraceGenerator};
pub use sitegraph::{Page, SiteGraph};
