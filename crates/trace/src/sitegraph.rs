//! Per-server site graphs.
//!
//! The paper's speculative-service protocol is driven by two kinds of
//! document interdependency (§3.1):
//!
//! * **embedding dependencies** — `D_j` is *always* requested with `D_i`
//!   (inline images): `p[i,j] = 1`;
//! * **traversal dependencies** — `D_j` is *sometimes* requested after
//!   `D_i` (followed hyperlinks). Fig. 4 shows the measured conditional
//!   probabilities peak at `1/k`, i.e. a page's `k` anchors are followed
//!   near-uniformly.
//!
//! A [`SiteGraph`] encodes exactly this structure: pages with embedded
//! objects and out-links, entry-point popularity weights, and a uniform
//! link-choice walk. Browsing sessions generated on this graph therefore
//! reproduce Fig. 4 *by construction* — which is the point: the
//! simulator's estimators must then rediscover the structure from the
//! trace alone.

use rand::Rng;
use serde::{Deserialize, Serialize};
use specweb_core::dist::Zipf;
use specweb_core::ids::{DocId, ServerId};
use specweb_core::rng::SeedTree;
use specweb_core::Result;

use crate::document::{sample_class, sample_mutable, Catalog, PopularityClass, SizeModel};

/// One page: a document plus its embedded objects and out-links.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Page {
    /// The page document itself.
    pub doc: DocId,
    /// Objects always fetched along with the page (embedding deps).
    pub embedded: Vec<DocId>,
    /// Indices (into the owning [`SiteGraph`]) of linked pages
    /// (traversal deps).
    pub links: Vec<u32>,
}

/// The site graph of one home server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteGraph {
    server: ServerId,
    pages: Vec<Page>,
    /// Per-page popularity class (cached from the catalog so link churn
    /// can stay class-assortative without a catalog reference).
    classes: Vec<PopularityClass>,
    /// Per-page entry-point weights (probability a session starts here),
    /// normalized.
    entry_weights: Vec<f64>,
    /// Cumulative entry weights for sampling.
    entry_cdf: Vec<f64>,
    /// The structural parameters the graph was generated with.
    cfg: SiteGraphConfig,
}

/// Samples `k` distinct link targets for page `i`: Zipf-preferential,
/// no self-links, and class-assortative with probability `assort`.
fn wire_links<R: Rng + ?Sized>(
    rng: &mut R,
    i: usize,
    k: usize,
    zipf: &Zipf,
    classes: &[PopularityClass],
    assort: f64,
) -> Vec<u32> {
    let mut links: Vec<u32> = Vec::with_capacity(k);
    let mut guard = 0;
    while links.len() < k && guard < 100 * k {
        guard += 1;
        // u32::MAX on (impossible — n_pages is validated to 32 bits)
        // overflow can never collide with a real page id.
        let t = u32::try_from(zipf.sample(rng)).unwrap_or(u32::MAX);
        if t as usize == i || links.contains(&t) {
            continue;
        }
        let same_class = classes[t as usize] == classes[i];
        if same_class || rng.gen::<f64>() >= assort {
            links.push(t);
        }
    }
    // Fallback for pathological cases (e.g. the only same-class pages
    // are already linked): fill with any distinct target.
    let mut guard = 0;
    while links.len() < k && guard < 100 * k {
        guard += 1;
        let t = u32::try_from(zipf.sample(rng)).unwrap_or(u32::MAX);
        if t as usize != i && !links.contains(&t) {
            links.push(t);
        }
    }
    links
}

/// Structural parameters for site-graph generation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SiteGraphConfig {
    /// Number of HTML pages.
    pub n_pages: usize,
    /// Mean number of embedded objects per page (geometric distribution;
    /// many pages have none, some have several).
    pub mean_embedded: f64,
    /// Out-links per page are drawn uniformly from `1..=max_links`.
    pub max_links: usize,
    /// Zipf exponent for both entry-point popularity and link-target
    /// preference (popular pages accumulate in-links).
    pub zipf_theta: f64,
    /// Class assortativity: the probability that a link target is forced
    /// to share its source page's popularity class. Real sites cluster
    /// this way (course pages link course pages; project showcases link
    /// other public pages), and it is what makes §2's remote/local/global
    /// classes *recoverable from the trace* — without it, browsing walks
    /// mix the classes beyond recognition.
    pub assortativity: f64,
    /// Size of the server-wide pool of *shared* embedded objects (the
    /// bullet GIFs and logos every 1995 page reused). Shared icons are
    /// in every client's cache after its first page, which is exactly
    /// why the paper finds embedding-only speculation saves so little.
    pub shared_object_pool: usize,
    /// Probability that an embedded slot reuses a pool icon instead of
    /// a page-unique object.
    pub shared_frac: f64,
}

impl Default for SiteGraphConfig {
    fn default() -> Self {
        // cs-www.bu.edu flavor: ~1000 accessed documents total; with
        // ~0.9 embedded objects per page, 500 pages yields ≈950 docs.
        SiteGraphConfig {
            n_pages: 500,
            mean_embedded: 0.9,
            max_links: 8,
            zipf_theta: 0.95,
            assortativity: 0.9,
            shared_object_pool: 40,
            shared_frac: 0.7,
        }
    }
}

/// Samples a geometric count with the given mean (p = 1/(1+mean)).
fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (1.0 + mean);
    let mut n = 0usize;
    while rng.gen::<f64>() > p && n < 64 {
        n += 1;
    }
    n
}

impl SiteGraph {
    /// Generates a site graph for `server`, appending its documents to
    /// `catalog`.
    pub fn generate(
        seed: &SeedTree,
        server: ServerId,
        cfg: &SiteGraphConfig,
        sizes: &SizeModel,
        catalog: &mut Catalog,
    ) -> Result<SiteGraph> {
        // Page ids are `u32` on the wire (`Page.links`), and every
        // per-page table below preallocates one slot per page — so the
        // page count needs a hard ceiling before either is safe.
        if cfg.n_pages > u32::MAX as usize {
            return Err(specweb_core::CoreError::invalid_config(
                "sitegraph.n_pages",
                "page ids are u32: n_pages must fit in 32 bits",
            ));
        }
        let mut rng = seed.child_idx("sitegraph", u64::from(server.raw())).rng();
        let zipf = Zipf::new(cfg.n_pages, cfg.zipf_theta)?;

        // The server-wide icon pool (logos, bullets, backgrounds).
        // Globally popular by construction — every page class inlines
        // them — and effectively immutable.
        let pool: Vec<DocId> = (0..cfg.shared_object_pool)
            .map(|_| {
                catalog.push(
                    server,
                    sizes.sample_object(&mut rng),
                    PopularityClass::Global,
                    false,
                    false,
                )
            })
            .collect();
        let pool_zipf = if pool.is_empty() {
            None
        } else {
            Some(Zipf::new(pool.len(), 0.8)?)
        };

        // Create page documents (+ their embedded objects).
        let mut pages = Vec::with_capacity(cfg.n_pages);
        let mut classes = Vec::with_capacity(cfg.n_pages);
        for _ in 0..cfg.n_pages {
            let class = sample_class(&mut rng);
            classes.push(class);
            let mutable = sample_mutable(&mut rng);
            let doc = catalog.push(server, sizes.sample_page(&mut rng), class, mutable, true);
            let n_emb = sample_geometric(&mut rng, cfg.mean_embedded);
            // Capacity hint only — the geometric tail is unbounded, so
            // cap the reservation; the vec still grows to hold any n_emb.
            let mut embedded = Vec::with_capacity(n_emb.min(64));
            for _ in 0..n_emb {
                // The guard preserves the RNG stream: the shared-pool
                // coin is only tossed when a pool exists, exactly as
                // the old `is_some() &&` short-circuit did.
                let obj = match pool_zipf.as_ref() {
                    Some(zipf) if rng.gen::<f64>() < cfg.shared_frac => pool[zipf.sample(&mut rng)],
                    _ => {
                        // Page-unique objects inherit the page's class and
                        // mutability (they change when the page does).
                        catalog.push(server, sizes.sample_object(&mut rng), class, mutable, false)
                    }
                };
                if !embedded.contains(&obj) {
                    embedded.push(obj);
                }
            }
            pages.push(Page {
                doc,
                embedded,
                links: Vec::new(),
            });
        }

        // Wire traversal links: each page gets 1..=max_links out-links
        // whose targets are Zipf-preferential (popular pages gather
        // in-links), class-assortative, excluding self-links and
        // duplicates.
        for (i, page) in pages.iter_mut().enumerate() {
            let k = rng.gen_range(1..=cfg.max_links.max(1));
            page.links = wire_links(&mut rng, i, k, &zipf, &classes, cfg.assortativity);
        }

        // Entry weights: Zipf over pages — rank r page is the r-th most
        // popular session entry point.
        let entry_weights: Vec<f64> = (0..cfg.n_pages).map(|r| zipf.weight(r)).collect();
        let mut entry_cdf = Vec::with_capacity(cfg.n_pages);
        let mut acc = 0.0;
        for &w in &entry_weights {
            acc += w;
            entry_cdf.push(acc);
        }
        if let Some(last) = entry_cdf.last_mut() {
            *last = 1.0;
        }

        Ok(SiteGraph {
            server,
            pages,
            classes,
            entry_weights,
            entry_cdf,
            cfg: *cfg,
        })
    }

    /// The owning server.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the graph has no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Page by index.
    pub fn page(&self, idx: usize) -> &Page {
        &self.pages[idx]
    }

    /// All pages.
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Per-page entry weights (normalized, index-aligned with pages).
    pub fn entry_weights(&self) -> &[f64] {
        &self.entry_weights
    }

    /// Samples a session entry page, optionally re-weighting each page by
    /// `bias(class)` (used to give local clients a taste for locally
    /// popular pages and remote clients the opposite).
    pub fn sample_entry<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        catalog: &Catalog,
        bias: impl Fn(PopularityClass) -> f64,
    ) -> usize {
        // Rejection sampling against the biased weights: draw from the
        // base Zipf CDF, accept with probability bias/bias_max.
        let mut bias_max: f64 = 0.0;
        for c in [
            PopularityClass::Remote,
            PopularityClass::Local,
            PopularityClass::Global,
        ] {
            bias_max = bias_max.max(bias(c));
        }
        if bias_max <= 0.0 {
            // Degenerate bias: fall back to the unbiased entry draw.
            return self.sample_entry_unbiased(rng);
        }
        for _ in 0..64 {
            let idx = self.sample_entry_unbiased(rng);
            let class = catalog.get(self.pages[idx].doc).class;
            if rng.gen::<f64>() * bias_max <= bias(class) {
                return idx;
            }
        }
        self.sample_entry_unbiased(rng)
    }

    /// Samples an entry page from the base Zipf weights.
    pub fn sample_entry_unbiased<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.entry_cdf
            .partition_point(|&c| c <= u)
            .min(self.pages.len() - 1)
    }

    /// Follows a uniformly-chosen out-link from `page_idx` — the 1/k
    /// anchor-following behaviour behind Fig. 4. Returns `None` for a
    /// dead-end page.
    pub fn follow_link<R: Rng + ?Sized>(&self, rng: &mut R, page_idx: usize) -> Option<usize> {
        let links = &self.pages[page_idx].links;
        if links.is_empty() {
            None
        } else {
            Some(links[rng.gen_range(0..links.len())] as usize)
        }
    }

    /// Site evolution: each page independently has its out-links
    /// re-targeted with probability `churn`. This slowly invalidates
    /// previously learned traversal dependencies — the mechanism behind
    /// the §3.4 update-cycle staleness experiment.
    pub fn churn_links<R: Rng + ?Sized>(&mut self, rng: &mut R, churn: f64, zipf_theta: f64) {
        let n = self.pages.len();
        if n < 2 {
            return;
        }
        let Ok(zipf) = Zipf::new(n, zipf_theta) else {
            // n >= 2 is checked above and theta was validated when the
            // graph was built, so this is unreachable; churning nothing
            // beats panicking in library code.
            return;
        };
        for i in 0..n {
            if rng.gen::<f64>() >= churn {
                continue;
            }
            let k = self.pages[i].links.len().max(1);
            self.pages[i].links =
                wire_links(rng, i, k, &zipf, &self.classes, self.cfg.assortativity);
        }
    }

    /// The popularity class of a page.
    pub fn page_class(&self, idx: usize) -> PopularityClass {
        self.classes[idx]
    }

    /// The full set of documents fetched when `page_idx` is visited: the
    /// page itself followed by all its embedded objects.
    pub fn visit_docs(&self, page_idx: usize) -> impl Iterator<Item = DocId> + '_ {
        let p = &self.pages[page_idx];
        std::iter::once(p.doc).chain(p.embedded.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(seed: u64, cfg: &SiteGraphConfig) -> (SiteGraph, Catalog) {
        let seed = SeedTree::new(seed);
        let sizes = SizeModel::web_1995().unwrap();
        let mut cat = Catalog::new();
        let g = SiteGraph::generate(&seed, ServerId(0), cfg, &sizes, &mut cat).unwrap();
        (g, cat)
    }

    #[test]
    fn generation_shape() {
        let cfg = SiteGraphConfig {
            n_pages: 100,
            mean_embedded: 1.0,
            max_links: 5,
            zipf_theta: 1.0,
            assortativity: 0.9,
            shared_object_pool: 10,
            shared_frac: 0.7,
        };
        let (g, cat) = build(1, &cfg);
        assert_eq!(g.len(), 100);
        // Catalog = icon pool + pages + page-unique objects; shared
        // icons appear in many embedded lists but exist once.
        let distinct_embedded: std::collections::HashSet<DocId> = g
            .pages()
            .iter()
            .flat_map(|p| p.embedded.iter().copied())
            .collect();
        let unique_objects = distinct_embedded
            .iter()
            .filter(|d| d.index() >= cfg.shared_object_pool)
            .count();
        assert_eq!(
            cat.len(),
            cfg.shared_object_pool + cfg.n_pages + unique_objects
        );
        let emb_total: usize = g.pages().iter().map(|p| p.embedded.len()).sum();
        // With mean 1.0 over 100 pages we expect a decent number of
        // embedded slots…
        assert!(emb_total > 30, "embedded objects: {emb_total}");
        // …and sharing: some icon is inlined by at least two pages.
        let mut seen = std::collections::HashMap::new();
        for p in g.pages() {
            for d in &p.embedded {
                *seen.entry(*d).or_insert(0u32) += 1;
            }
        }
        assert!(
            seen.values().any(|&c| c >= 2),
            "no shared embedded objects found"
        );
        for p in g.pages() {
            assert!(!p.links.is_empty());
            assert!(p.links.len() <= 5);
            assert!(p.links.iter().all(|&t| (t as usize) < 100));
            // No self links, no duplicates.
            assert!(!p
                .links
                .contains(&(g.pages().iter().position(|q| q.doc == p.doc).unwrap() as u32)));
            let mut l = p.links.clone();
            l.sort_unstable();
            l.dedup();
            assert_eq!(l.len(), p.links.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SiteGraphConfig::default();
        let (g1, c1) = build(9, &cfg);
        let (g2, c2) = build(9, &cfg);
        assert_eq!(g1.pages().len(), g2.pages().len());
        assert_eq!(c1.total_bytes(), c2.total_bytes());
        for (a, b) in g1.pages().iter().zip(g2.pages()) {
            assert_eq!(a.links, b.links);
            assert_eq!(a.embedded, b.embedded);
        }
    }

    #[test]
    fn entry_sampling_favors_low_ranks() {
        let cfg = SiteGraphConfig {
            n_pages: 50,
            mean_embedded: 0.0,
            max_links: 3,
            zipf_theta: 1.0,
            assortativity: 0.9,
            shared_object_pool: 10,
            shared_frac: 0.7,
        };
        let (g, _cat) = build(2, &cfg);
        let mut rng = SeedTree::new(3).child("entries").rng();
        let mut counts = [0u32; 50];
        for _ in 0..20_000 {
            counts[g.sample_entry_unbiased(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49]);
    }

    #[test]
    fn biased_entry_sampling_shifts_class_mix() {
        let cfg = SiteGraphConfig {
            n_pages: 200,
            mean_embedded: 0.0,
            max_links: 3,
            zipf_theta: 0.5,
            assortativity: 0.9,
            shared_object_pool: 10,
            shared_frac: 0.7,
        };
        let (g, cat) = build(4, &cfg);
        let mut rng = SeedTree::new(5).child("bias").rng();
        let mut local_hits = 0;
        let n = 5_000;
        for _ in 0..n {
            let idx = g.sample_entry(&mut rng, &cat, |c| match c {
                PopularityClass::Local => 10.0,
                _ => 0.5,
            });
            if cat.get(g.page(idx).doc).class == PopularityClass::Local {
                local_hits += 1;
            }
        }
        // Local pages are ~52% of the catalog but the bias should push
        // their share of entries well above that.
        assert!(
            local_hits as f64 / n as f64 > 0.75,
            "local share {}",
            local_hits as f64 / n as f64
        );
    }

    #[test]
    fn follow_link_is_uniform_over_anchors() {
        let cfg = SiteGraphConfig {
            n_pages: 30,
            mean_embedded: 0.0,
            max_links: 4,
            zipf_theta: 0.0,
            assortativity: 0.9,
            shared_object_pool: 10,
            shared_frac: 0.7,
        };
        let (g, _cat) = build(6, &cfg);
        // Find a page with 4 links and check empirical uniformity.
        let idx = g.pages().iter().position(|p| p.links.len() == 4).unwrap();
        let mut rng = SeedTree::new(7).child("follow").rng();
        let mut counts = std::collections::HashMap::new();
        let n = 40_000;
        for _ in 0..n {
            let t = g.follow_link(&mut rng, idx).unwrap();
            *counts.entry(t).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 4);
        for &c in counts.values() {
            let f = f64::from(c) / n as f64;
            assert!((f - 0.25).abs() < 0.02, "link share {f}");
        }
    }

    #[test]
    fn churn_rewires_links() {
        let cfg = SiteGraphConfig::default();
        let (mut g, _cat) = build(8, &cfg);
        let before: Vec<Vec<u32>> = g.pages().iter().map(|p| p.links.clone()).collect();
        let mut rng = SeedTree::new(9).child("churn").rng();
        g.churn_links(&mut rng, 1.0, cfg.zipf_theta);
        let changed = g
            .pages()
            .iter()
            .zip(&before)
            .filter(|(p, b)| &p.links != *b)
            .count();
        assert!(
            changed > g.len() / 2,
            "full churn changed only {changed}/{} pages",
            g.len()
        );
        // Link counts are preserved by rewiring.
        for (p, b) in g.pages().iter().zip(&before) {
            assert_eq!(p.links.len(), b.len());
        }
    }

    #[test]
    fn churn_zero_is_identity() {
        let cfg = SiteGraphConfig::default();
        let (mut g, _cat) = build(10, &cfg);
        let before: Vec<Vec<u32>> = g.pages().iter().map(|p| p.links.clone()).collect();
        let mut rng = SeedTree::new(11).child("churn0").rng();
        g.churn_links(&mut rng, 0.0, cfg.zipf_theta);
        for (p, b) in g.pages().iter().zip(&before) {
            assert_eq!(&p.links, b);
        }
    }

    #[test]
    fn visit_docs_includes_page_and_embedded() {
        let cfg = SiteGraphConfig {
            n_pages: 20,
            mean_embedded: 2.0,
            max_links: 2,
            zipf_theta: 0.5,
            assortativity: 0.9,
            shared_object_pool: 10,
            shared_frac: 0.7,
        };
        let (g, _cat) = build(12, &cfg);
        let idx = g
            .pages()
            .iter()
            .position(|p| !p.embedded.is_empty())
            .expect("some page has embedded objects");
        let docs: Vec<DocId> = g.visit_docs(idx).collect();
        assert_eq!(docs[0], g.page(idx).doc);
        assert_eq!(docs.len(), 1 + g.page(idx).embedded.len());
    }

    #[test]
    fn geometric_mean_is_right() {
        let mut rng = SeedTree::new(13).child("geo").rng();
        let n = 50_000;
        let total: usize = (0..n).map(|_| sample_geometric(&mut rng, 2.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "geometric mean {mean}");
        assert_eq!(sample_geometric(&mut rng, 0.0), 0);
    }
}
