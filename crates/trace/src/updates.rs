//! The document-update process.
//!
//! §2 monitored *date of last update* for 186 days and found: remotely
//! and globally popular documents update with < 0.5% probability per
//! document per day, locally popular ones with ≈ 2%/day, and frequent
//! updates are confined to a *very small* subset ("mutable" documents).
//! Multiple same-day updates count once.
//!
//! We reproduce that structure exactly: each document class has a target
//! mean daily update rate; immutable documents update at one tenth of
//! the class rate and the small mutable subset carries the rest, so the
//! class-wide mean matches the paper while updates concentrate on few
//! documents.

use rand::Rng;
use serde::{Deserialize, Serialize};
use specweb_core::ids::DocId;
use specweb_core::rng::SeedTree;

use crate::document::Catalog;

/// One update event: `doc` changed on `day` (at most one per day, per
/// the paper's counting rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateEvent {
    /// Zero-based day of the update.
    pub day: u64,
    /// The updated document.
    pub doc: DocId,
}

/// Generates per-day update events for a catalog.
#[derive(Debug, Clone, Copy)]
pub struct UpdateProcess {
    /// Multiplier on the immutable documents' share of the class rate
    /// (0.1 = immutable docs update at a tenth of the class mean).
    pub immutable_share: f64,
    /// Fraction of documents that are mutable (must match the catalog's
    /// actual mutable fraction for the class mean to calibrate; the
    /// catalog generator uses 5%).
    pub mutable_fraction: f64,
}

impl Default for UpdateProcess {
    fn default() -> Self {
        UpdateProcess {
            immutable_share: 0.1,
            mutable_fraction: 0.05,
        }
    }
}

impl UpdateProcess {
    /// The daily update probability for one document, given its class
    /// rate and mutability, such that the class-wide mean equals the
    /// class rate.
    pub fn doc_probability(&self, class_rate: f64, mutable: bool) -> f64 {
        let p_imm = class_rate * self.immutable_share;
        if !mutable {
            return p_imm;
        }
        let f = self.mutable_fraction.max(1e-9);
        // mean = f·p_mut + (1−f)·p_imm  ⇒  p_mut = (mean − (1−f)·p_imm)/f
        ((class_rate - (1.0 - f) * p_imm) / f).clamp(0.0, 1.0)
    }

    /// Generates update events for `days` days.
    pub fn generate(&self, seed: &SeedTree, catalog: &Catalog, days: u64) -> Vec<UpdateEvent> {
        let mut rng = seed.child("updates").rng();
        let mut out = Vec::new();
        for day in 0..days {
            for d in catalog.iter() {
                let p = self.doc_probability(d.class.daily_update_probability(), d.mutable);
                if rng.gen::<f64>() < p {
                    out.push(UpdateEvent { day, doc: d.id });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::PopularityClass;
    use specweb_core::ids::ServerId;
    use specweb_core::units::Bytes;

    fn catalog(n: usize, class: PopularityClass, mutable_every: usize) -> Catalog {
        let mut c = Catalog::new();
        for i in 0..n {
            c.push(
                ServerId(0),
                Bytes::new(1_000),
                class,
                mutable_every > 0 && i % mutable_every == 0,
                true,
            );
        }
        c
    }

    #[test]
    fn class_mean_rate_is_calibrated() {
        // 5% mutable, local class (2%/day target).
        let cat = catalog(2_000, PopularityClass::Local, 20);
        let proc = UpdateProcess::default();
        let days = 200;
        let events = proc.generate(&SeedTree::new(40), &cat, days);
        let mean_rate = events.len() as f64 / (cat.len() as f64 * days as f64);
        assert!(
            (mean_rate - 0.02).abs() < 0.003,
            "local class mean rate {mean_rate}, want ≈0.02"
        );
    }

    #[test]
    fn remote_class_updates_rarely() {
        let cat = catalog(2_000, PopularityClass::Remote, 20);
        let proc = UpdateProcess::default();
        let days = 200;
        let events = proc.generate(&SeedTree::new(41), &cat, days);
        let mean_rate = events.len() as f64 / (cat.len() as f64 * days as f64);
        assert!(
            (mean_rate - 0.005).abs() < 0.002,
            "remote class mean rate {mean_rate}, want ≈0.005"
        );
    }

    #[test]
    fn updates_concentrate_on_mutable_docs() {
        let cat = catalog(1_000, PopularityClass::Local, 20); // 5% mutable
        let proc = UpdateProcess::default();
        let events = proc.generate(&SeedTree::new(42), &cat, 100);
        let mutable_updates = events.iter().filter(|e| cat.get(e.doc).mutable).count();
        let share = mutable_updates as f64 / events.len().max(1) as f64;
        // 5% of documents should carry the large majority of updates.
        assert!(share > 0.6, "mutable share of updates {share}");
    }

    #[test]
    fn at_most_one_update_per_doc_per_day() {
        let cat = catalog(50, PopularityClass::Local, 1); // all mutable
        let proc = UpdateProcess::default();
        let events = proc.generate(&SeedTree::new(43), &cat, 30);
        let mut seen = std::collections::HashSet::new();
        for e in &events {
            assert!(seen.insert((e.day, e.doc)), "duplicate update {e:?}");
        }
    }

    #[test]
    fn doc_probability_bounds() {
        let p = UpdateProcess::default();
        assert!(p.doc_probability(0.02, true) <= 1.0);
        assert!(p.doc_probability(0.02, true) > p.doc_probability(0.02, false));
        assert!((p.doc_probability(0.02, false) - 0.002).abs() < 1e-12);
        assert_eq!(p.doc_probability(0.0, true), 0.0);
    }

    #[test]
    fn deterministic() {
        let cat = catalog(100, PopularityClass::Global, 10);
        let proc = UpdateProcess::default();
        let a = proc.generate(&SeedTree::new(44), &cat, 50);
        let b = proc.generate(&SeedTree::new(44), &cat, 50);
        assert_eq!(a, b);
    }
}
