//! The paper's log-cleaning pipeline.
//!
//! Footnote 6 (§3.2): *"This processing involved the removal of accesses
//! to non-existent documents, to live documents, and to scripts, as well
//! as renaming accesses to aliases of a document."*
//!
//! The pipeline below applies exactly those four steps to parsed log
//! records:
//!
//! 1. drop non-2xx responses (non-existent documents: 404s and friends);
//! 2. drop script executions (paths under `/cgi-bin/` or ending in
//!    `.cgi`);
//! 3. drop *live* documents (paths the operator lists as
//!    dynamically-generated);
//! 4. canonicalize aliases (e.g. `/` → `/index.html`) via an alias map,
//!    then fold duplicate records.

use std::collections::BTreeMap;

use crate::logfmt::LogRecord;

/// Configuration for the cleaning pass.
#[derive(Debug, Clone, Default)]
pub struct CleaningConfig {
    /// Path prefixes of dynamically generated ("live") documents.
    pub live_prefixes: Vec<String>,
    /// Alias → canonical path map (a BTreeMap so the public config type
    /// carries no hash-order surface).
    pub aliases: BTreeMap<String, String>,
}

impl CleaningConfig {
    /// A typical 1995 httpd configuration: `/` is an alias for
    /// `/index.html`, nothing is live.
    pub fn typical() -> Self {
        let mut aliases = BTreeMap::new();
        aliases.insert("/".to_string(), "/index.html".to_string());
        CleaningConfig {
            live_prefixes: Vec::new(),
            aliases,
        }
    }
}

/// Per-step removal counts, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleaningReport {
    /// Records kept.
    pub kept: usize,
    /// Dropped: non-2xx status.
    pub non_existent: usize,
    /// Dropped: script executions.
    pub scripts: usize,
    /// Dropped: live documents.
    pub live: usize,
    /// Renamed via the alias map (still kept).
    pub aliased: usize,
}

/// Whether a path is a script execution.
fn is_script(path: &str) -> bool {
    let path = path.split('?').next().unwrap_or(path);
    path.starts_with("/cgi-bin/") || path.ends_with(".cgi") || path.ends_with(".pl")
}

/// Applies the paper's cleaning pipeline.
pub fn clean(records: Vec<LogRecord>, cfg: &CleaningConfig) -> (Vec<LogRecord>, CleaningReport) {
    let mut out = Vec::with_capacity(records.len());
    let mut report = CleaningReport::default();
    for mut r in records {
        if !(200..300).contains(&r.status) {
            report.non_existent += 1;
            continue;
        }
        if is_script(&r.path) {
            report.scripts += 1;
            continue;
        }
        if cfg.live_prefixes.iter().any(|p| r.path.starts_with(p)) {
            report.live += 1;
            continue;
        }
        if let Some(canonical) = cfg.aliases.get(&r.path) {
            r.path = canonical.clone();
            report.aliased += 1;
        }
        report.kept += 1;
        out.push(r);
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use specweb_core::ids::ClientId;
    use specweb_core::time::SimTime;
    use specweb_core::units::Bytes;

    fn rec(path: &str, status: u16) -> LogRecord {
        LogRecord {
            client: ClientId::new(1),
            time: SimTime::from_millis(1),
            method: "GET".into(),
            path: path.into(),
            status,
            size: Bytes::new(100),
        }
    }

    #[test]
    fn drops_non_2xx() {
        let (out, rep) = clean(
            vec![
                rec("/a.html", 200),
                rec("/missing.html", 404),
                rec("/b.html", 500),
            ],
            &CleaningConfig::default(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(rep.non_existent, 2);
        assert_eq!(rep.kept, 1);
    }

    #[test]
    fn drops_scripts() {
        let (out, rep) = clean(
            vec![
                rec("/cgi-bin/search", 200),
                rec("/form.cgi", 200),
                rec("/count.pl", 200),
                rec("/form.cgi?q=1", 200),
                rec("/page.html", 200),
            ],
            &CleaningConfig::default(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(rep.scripts, 4);
    }

    #[test]
    fn drops_live_documents() {
        let cfg = CleaningConfig {
            live_prefixes: vec!["/live/".to_string()],
            aliases: BTreeMap::new(),
        };
        let (out, rep) = clean(
            vec![rec("/live/ticker.html", 200), rec("/static.html", 200)],
            &cfg,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(rep.live, 1);
    }

    #[test]
    fn canonicalizes_aliases() {
        let cfg = CleaningConfig::typical();
        let (out, rep) = clean(vec![rec("/", 200), rec("/index.html", 200)], &cfg);
        assert_eq!(out.len(), 2);
        assert_eq!(rep.aliased, 1);
        assert!(out.iter().all(|r| r.path == "/index.html"));
    }

    #[test]
    fn keeps_2xx_variants() {
        let (out, _rep) = clean(
            vec![rec("/a", 200), rec("/b", 204), rec("/c", 206)],
            &CleaningConfig::default(),
        );
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empty_input() {
        let (out, rep) = clean(Vec::new(), &CleaningConfig::typical());
        assert!(out.is_empty());
        assert_eq!(rep, CleaningReport::default());
    }

    #[test]
    fn report_counts_are_a_partition() {
        let records = vec![
            rec("/", 200),
            rec("/x.html", 404),
            rec("/cgi-bin/x", 200),
            rec("/ok.html", 200),
        ];
        let n = records.len();
        let (out, rep) = clean(records, &CleaningConfig::typical());
        assert_eq!(out.len(), rep.kept);
        assert_eq!(rep.kept + rep.non_existent + rep.scripts + rep.live, n);
    }
}
