//! Importing real logs.
//!
//! Everything downstream — classification, λ fitting, the P/P*
//! estimators, both simulators — consumes a [`Trace`]. This module
//! reconstructs one from parsed (and cleaned) log records, which is how
//! a real HTTPd log is dropped into the pipeline in place of the
//! synthetic generator.
//!
//! What a log does *not* carry, and how it is filled in:
//!
//! * **document identity** — paths are interned in first-seen order;
//!   sizes are the largest observed response size per path (real logs
//!   under-report on 304s and aborts);
//! * **client locality** — decided by a caller-supplied predicate (in
//!   practice: an address/prefix list of the organization; the paper
//!   split BU campus addresses from the rest the same way);
//! * **topology attachment** — local clients are spread over the campus
//!   subtree's leaves, remote clients over the rest, deterministically
//!   by client id;
//! * **ground-truth session ids** — not reconstructable; the imported
//!   trace derives sessions by timing via [`crate::strides`], and the
//!   `session` field is filled with a timing-derived segmentation
//!   (30-minute gaps) so downstream consumers see consistent ids;
//! * **catalog metadata** — popularity class and mutability are not in
//!   the log; imported documents are marked `Global`/immutable and the
//!   real classification is re-derived by `specweb-dissem`'s
//!   `Classifier` from the trace itself, exactly as a server would.

use std::collections::HashMap;

use specweb_core::ids::{ClientId, DocId, ServerId};
use specweb_core::rng::splitmix64;
use specweb_core::time::Duration;
use specweb_core::units::Bytes;
use specweb_core::{CoreError, Result};
use specweb_netsim::topology::Topology;

use crate::clients::{Client, ClientPopulation, Locality};
use crate::document::{Catalog, PopularityClass};
use crate::generator::{Access, Trace};
use crate::logfmt::LogRecord;

/// Import options.
#[derive(Debug, Clone)]
pub struct ImportConfig {
    /// The server all imported documents belong to.
    pub server: ServerId,
    /// Gap that starts a new derived session (fills `Access::session`).
    pub session_gap: Duration,
}

impl Default for ImportConfig {
    fn default() -> Self {
        ImportConfig {
            server: ServerId::new(0),
            session_gap: Duration::from_secs(1_800),
        }
    }
}

/// Builds a [`Trace`] from cleaned log records.
///
/// `is_local` decides each client's [`Locality`] (e.g. an address-list
/// check in a real deployment). Records must be time-ordered, as log
/// files are.
pub fn trace_from_records(
    records: &[LogRecord],
    topo: &Topology,
    cfg: &ImportConfig,
    mut is_local: impl FnMut(ClientId) -> bool,
) -> Result<Trace> {
    if records.is_empty() {
        return Err(CoreError::Estimation("empty log".into()));
    }
    for w in records.windows(2) {
        if w[1].time < w[0].time {
            return Err(CoreError::parse(
                0,
                "log records are not time-ordered".to_string(),
            ));
        }
    }

    // Intern paths → dense doc ids; track max observed size.
    let mut doc_ids: HashMap<&str, DocId> = HashMap::new();
    let mut sizes: Vec<Bytes> = Vec::new();
    // Intern clients → dense ids (log client ids can be sparse).
    let mut client_ids: HashMap<ClientId, ClientId> = HashMap::new();
    let mut localities: Vec<Locality> = Vec::new();

    for r in records {
        let next_doc = doc_ids.len();
        let doc = *doc_ids.entry(r.path.as_str()).or_insert_with(|| {
            sizes.push(Bytes::ZERO);
            DocId::from(next_doc)
        });
        sizes[doc.index()] = sizes[doc.index()].max(r.size);

        let next_client = client_ids.len();
        client_ids.entry(r.client).or_insert_with(|| {
            localities.push(if is_local(r.client) {
                Locality::Local
            } else {
                Locality::Remote
            });
            ClientId::from(next_client)
        });
    }

    // Documents whose observed size is zero everywhere (all 304s) get a
    // nominal 1 byte so ratios stay finite.
    for s in &mut sizes {
        if *s == Bytes::ZERO {
            *s = Bytes::new(1);
        }
    }

    // Catalog: class/mutability unknown from the log — re-derived
    // downstream by the classifier.
    let mut catalog = Catalog::new();
    for &size in &sizes {
        catalog.push(cfg.server, size, PopularityClass::Global, false, true);
    }

    // Attach clients to leaves: campus subtree for locals, the rest for
    // remotes, spread deterministically.
    let campus_root = topo.children(Topology::ROOT).next();
    let mut campus_leaves = Vec::new();
    let mut wide_leaves = Vec::new();
    for &leaf in topo.leaves() {
        if campus_root.is_some_and(|c| topo.is_ancestor(c, leaf)) {
            campus_leaves.push(leaf);
        } else {
            wide_leaves.push(leaf);
        }
    }
    if campus_leaves.is_empty() {
        campus_leaves = topo.leaves().to_vec();
    }
    if wide_leaves.is_empty() {
        wide_leaves = topo.leaves().to_vec();
    }
    let clients: Vec<Client> = localities
        .iter()
        .enumerate()
        .map(|(i, &locality)| {
            let pool = match locality {
                Locality::Local => &campus_leaves,
                Locality::Remote => &wide_leaves,
            };
            Client {
                id: ClientId::from(i),
                // lint:allow(W2): value is `% pool.len()`, strictly below usize range
                node: pool[(splitmix64(i as u64) % pool.len() as u64) as usize],
                locality,
            }
        })
        .collect();
    let population = ClientPopulation::from_clients(clients)?;

    // Accesses, with timing-derived session ids per client.
    let mut last_seen: HashMap<ClientId, (specweb_core::time::SimTime, u64)> = HashMap::new();
    let mut next_session: u64 = 0;
    let mut accesses = Vec::with_capacity(records.len());
    for r in records {
        let doc = doc_ids[r.path.as_str()];
        let client = client_ids[&r.client];
        let session = match last_seen.get(&client) {
            Some(&(prev, sess))
                if !cfg.session_gap.is_infinite() && r.time.since(prev) < cfg.session_gap =>
            {
                sess
            }
            _ => {
                let s = next_session;
                next_session += 1;
                s
            }
        };
        last_seen.insert(client, (r.time, session));
        accesses.push(Access {
            time: r.time,
            client,
            doc,
            server: cfg.server,
            locality: population.get(client).locality,
            session,
        });
    }

    let duration = records
        .last()
        .map(|r| Duration::from_millis(r.time.as_millis() + 1))
        .unwrap_or(Duration::ZERO);

    Ok(Trace {
        accesses,
        catalog,
        graphs: Vec::new(), // unknown for imported logs
        clients: population,
        duration,
        n_sessions: next_session,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use specweb_core::time::SimTime;

    fn rec(client: u32, path: &str, t_ms: u64, size: u64) -> LogRecord {
        LogRecord {
            client: ClientId::new(client),
            time: SimTime::from_millis(t_ms),
            method: "GET".into(),
            path: path.into(),
            status: 200,
            size: Bytes::new(size),
        }
    }

    fn topo() -> Topology {
        Topology::balanced(2, 3, 4)
    }

    #[test]
    fn import_basics() {
        let records = vec![
            rec(7, "/a.html", 0, 100),
            rec(7, "/b.html", 1_000, 200),
            rec(9, "/a.html", 2_000, 100),
        ];
        let t = trace_from_records(&records, &topo(), &ImportConfig::default(), |c| {
            c == ClientId::new(7)
        })
        .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.catalog.len(), 2);
        assert_eq!(t.clients.len(), 2);
        // Same path → same doc.
        assert_eq!(t.accesses[0].doc, t.accesses[2].doc);
        // Localities follow the predicate.
        assert_eq!(t.accesses[0].locality, Locality::Local);
        assert_eq!(t.accesses[2].locality, Locality::Remote);
        // Sizes from observations.
        assert_eq!(t.catalog.size(t.accesses[1].doc), Bytes::new(200));
    }

    #[test]
    fn import_takes_max_observed_size() {
        let records = vec![
            rec(1, "/x", 0, 500),
            rec(1, "/x", 10_000_000, 0), // a 304 later
            rec(2, "/x", 20_000_000, 900),
        ];
        let t = trace_from_records(&records, &topo(), &ImportConfig::default(), |_| false).unwrap();
        assert_eq!(t.catalog.size(DocId::new(0)), Bytes::new(900));
    }

    #[test]
    fn all_304_docs_get_nominal_size() {
        let records = vec![rec(1, "/x", 0, 0)];
        let t = trace_from_records(&records, &topo(), &ImportConfig::default(), |_| false).unwrap();
        assert_eq!(t.catalog.size(DocId::new(0)), Bytes::new(1));
    }

    #[test]
    fn session_ids_derive_from_timing() {
        let gap = 1_800_000u64; // 30 min in ms
        let records = vec![
            rec(1, "/a", 0, 10),
            rec(1, "/b", 1_000, 10),       // same session
            rec(2, "/a", 1_500, 10),       // different client = own session
            rec(1, "/a", gap + 2_000, 10), // new session
        ];
        let t = trace_from_records(&records, &topo(), &ImportConfig::default(), |_| false).unwrap();
        assert!(t.n_sessions >= 3);
        let c1: Vec<u64> = t
            .accesses
            .iter()
            .filter(|a| a.client == ClientId::new(0))
            .map(|a| a.session)
            .collect();
        assert_eq!(c1[0], c1[1]);
        assert_ne!(c1[1], c1[2]);
    }

    #[test]
    fn unordered_log_is_rejected() {
        let records = vec![rec(1, "/a", 1_000, 10), rec(1, "/b", 0, 10)];
        assert!(
            trace_from_records(&records, &topo(), &ImportConfig::default(), |_| false).is_err()
        );
    }

    #[test]
    fn empty_log_is_rejected() {
        assert!(trace_from_records(&[], &topo(), &ImportConfig::default(), |_| false).is_err());
    }

    #[test]
    fn imported_trace_drives_the_analyzers() {
        // Round-trip: generate → log → parse → import → analyze.
        use crate::generator::{TraceConfig, TraceGenerator};
        use crate::logfmt;
        let topo = topo();
        let orig = TraceGenerator::new(TraceConfig::small(500))
            .unwrap()
            .generate(&topo)
            .unwrap();
        let text = logfmt::write_log(&orig);
        let (records, bad) = logfmt::parse_log(&text);
        assert!(bad.is_empty());
        // Use the original population to answer locality.
        let t = trace_from_records(&records, &topo, &ImportConfig::default(), |raw| {
            orig.clients.get(raw).locality == Locality::Local
        })
        .unwrap();
        assert_eq!(t.len(), orig.len());
        assert_eq!(t.catalog.len(), {
            let mut seen = std::collections::HashSet::new();
            orig.accesses.iter().for_each(|a| {
                seen.insert(a.doc);
            });
            seen.len()
        });
        // Locality mix carried over.
        let orig_remote = orig
            .accesses
            .iter()
            .filter(|a| a.locality == Locality::Remote)
            .count();
        let imp_remote = t
            .accesses
            .iter()
            .filter(|a| a.locality == Locality::Remote)
            .count();
        assert_eq!(orig_remote, imp_remote);
    }
}
