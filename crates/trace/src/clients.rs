//! The client population.
//!
//! §2 splits accesses into *local* (from inside the organization — the
//! BU campus) and *remote* (everyone else); the remote-to-local access
//! ratio of each document determines its popularity class. We model a
//! population in which each client is either local or remote, attached
//! to a leaf of the netsim topology: local clients sit under one
//! designated "campus" subtree near the server, remote clients under the
//! rest of the tree.
//!
//! Client activity is itself heavy-tailed (a few crawlers/power users
//! dominate real logs), so each client gets a Zipf activity weight.

use rand::Rng;
use serde::{Deserialize, Serialize};
use specweb_core::dist::Zipf;
use specweb_core::ids::{ClientId, NodeId};
use specweb_core::rng::SeedTree;
use specweb_core::Result;
use specweb_netsim::topology::Topology;

use crate::document::PopularityClass;

/// Upper bound on the client population: far above the million-client
/// traces we target, but low enough that the per-client preallocations
/// (`n_clients × size_of::<Client>`, the activity CDF, the Zipf weight
/// table) stay a small fraction of addressable memory.
pub const MAX_CLIENTS: usize = 1 << 30;

/// Whether a client is inside the producing organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// On-campus / intra-organization.
    Local,
    /// Off-campus / the wide Internet.
    Remote,
}

impl Locality {
    /// The entry-page class bias for this locality: local clients
    /// gravitate to locally-popular pages, remote clients to
    /// remotely-popular ones, and both visit globally-popular pages.
    /// Calibrated so that the per-class remote-access ratios land in the
    /// paper's >85% / <15% / in-between bands.
    pub fn class_bias(self, class: PopularityClass) -> f64 {
        match (self, class) {
            (Locality::Local, PopularityClass::Local) => 1.0,
            (Locality::Local, PopularityClass::Global) => 0.45,
            (Locality::Local, PopularityClass::Remote) => 0.02,
            (Locality::Remote, PopularityClass::Remote) => 1.0,
            (Locality::Remote, PopularityClass::Global) => 0.45,
            (Locality::Remote, PopularityClass::Local) => 0.02,
        }
    }
}

/// One client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Client {
    /// The client's id.
    pub id: ClientId,
    /// The topology leaf the client is attached to.
    pub node: NodeId,
    /// Local or remote relative to the home server's organization.
    pub locality: Locality,
}

/// The full client population with activity weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientPopulation {
    clients: Vec<Client>,
    /// Cumulative activity weights for sampling which client produces
    /// the next session.
    activity_cdf: Vec<f64>,
}

/// Parameters for population generation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClientConfig {
    /// Total number of distinct clients (paper trace: 8,474).
    pub n_clients: usize,
    /// Fraction of clients that are local to the organization.
    pub local_fraction: f64,
    /// Zipf exponent for client activity (how much heavy users dominate).
    pub activity_theta: f64,
    /// Activity multiplier for local clients. Campus populations are
    /// small but access their own server far more often per client than
    /// the wide Internet does (the BU logs show hundreds of locally
    /// popular documents, which requires local traffic comparable in
    /// volume to remote). With `local_fraction = 0.25` a boost of 3
    /// puts local accesses at ≈50% of the trace.
    pub local_activity_boost: f64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            n_clients: 2_000,
            local_fraction: 0.25,
            activity_theta: 0.7,
            local_activity_boost: 3.0,
        }
    }
}

impl ClientPopulation {
    /// Builds a population from an explicit client list (used when
    /// importing real logs — activity weights are irrelevant for
    /// replay, so they are uniform). Client ids must be dense and in
    /// order.
    pub fn from_clients(clients: Vec<Client>) -> Result<ClientPopulation> {
        if clients.is_empty() {
            return Err(specweb_core::CoreError::invalid_config(
                "clients.list",
                "must be non-empty",
            ));
        }
        for (i, c) in clients.iter().enumerate() {
            if c.id.index() != i {
                return Err(specweb_core::CoreError::invalid_config(
                    "clients.list",
                    format!("client ids must be dense, found {} at {}", c.id, i),
                ));
            }
        }
        let n = clients.len();
        let activity_cdf = (1..=n).map(|i| i as f64 / n as f64).collect();
        Ok(ClientPopulation {
            clients,
            activity_cdf,
        })
    }

    /// Generates a population over a topology: the subtree under the
    /// root's **first child** is the campus (local clients attach to its
    /// leaves); all other leaves host remote clients. Activity ranks are
    /// shuffled so heavy users appear in both groups.
    pub fn generate(
        seed: &SeedTree,
        topo: &Topology,
        cfg: &ClientConfig,
    ) -> Result<ClientPopulation> {
        if cfg.n_clients == 0 {
            return Err(specweb_core::CoreError::invalid_config(
                "clients.n_clients",
                "must be positive",
            ));
        }
        // Dominating bound for every per-client allocation below: an
        // unchecked `with_capacity(n_clients)` is how a fat-fingered
        // scale factor turns into an instant OOM.
        if cfg.n_clients > MAX_CLIENTS {
            return Err(specweb_core::CoreError::invalid_config(
                "clients.n_clients",
                "exceeds MAX_CLIENTS (1 << 30)",
            ));
        }
        if !(0.0..=1.0).contains(&cfg.local_fraction) {
            return Err(specweb_core::CoreError::invalid_config(
                "clients.local_fraction",
                "must be in [0, 1]",
            ));
        }
        let mut rng = seed.child("clients").rng();

        // Partition the leaves: campus = leaves under the root's first
        // child; the rest is the wide Internet.
        let campus_root = topo.children(Topology::ROOT).next();
        let mut campus_leaves = Vec::new();
        let mut wide_leaves = Vec::new();
        for &leaf in topo.leaves() {
            let is_campus = campus_root.is_some_and(|c| topo.is_ancestor(c, leaf));
            if is_campus {
                campus_leaves.push(leaf);
            } else {
                wide_leaves.push(leaf);
            }
        }
        // Degenerate topologies: fall back to splitting the leaf list.
        if campus_leaves.is_empty() || wide_leaves.is_empty() {
            let all = topo.leaves().to_vec();
            let cut = (all.len() / 4)
                .max(1)
                .min(all.len().saturating_sub(1))
                .max(1);
            campus_leaves = all[..cut].to_vec();
            wide_leaves = if all.len() > cut {
                all[cut..].to_vec()
            } else {
                all.clone()
            };
        }

        // `local_fraction` is validated to [0, 1], but the f64 roundtrip
        // can still drift at large populations — clamp so the Local
        // partition can never exceed the population itself.
        let n_local =
            (((cfg.n_clients as f64) * cfg.local_fraction).round() as usize).min(cfg.n_clients);
        let mut clients = Vec::with_capacity(cfg.n_clients);
        for i in 0..cfg.n_clients {
            let (locality, pool) = if i < n_local {
                (Locality::Local, &campus_leaves)
            } else {
                (Locality::Remote, &wide_leaves)
            };
            let node = pool[rng.gen_range(0..pool.len())];
            clients.push(Client {
                id: ClientId::from(i),
                node,
                locality,
            });
        }

        // Zipf activity, assigned to random clients (rank ≠ id).
        let zipf = Zipf::new(cfg.n_clients, cfg.activity_theta)?;
        let mut ranks: Vec<usize> = (0..cfg.n_clients).collect();
        // Fisher–Yates with our deterministic rng.
        for i in (1..ranks.len()).rev() {
            let j = rng.gen_range(0..=i);
            ranks.swap(i, j);
        }
        let mut weights = vec![0.0f64; cfg.n_clients];
        for (rank, &client_idx) in ranks.iter().enumerate() {
            weights[client_idx] = zipf.weight(rank);
        }
        // Local clients are fewer but individually much more active.
        let boost = cfg.local_activity_boost.max(0.0);
        for (w, c) in weights.iter_mut().zip(&clients) {
            if c.locality == Locality::Local {
                *w *= boost;
            }
        }
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            for w in &mut weights {
                *w /= total;
            }
        }
        let mut activity_cdf = Vec::with_capacity(cfg.n_clients);
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            activity_cdf.push(acc);
        }
        if let Some(last) = activity_cdf.last_mut() {
            *last = 1.0;
        }

        Ok(ClientPopulation {
            clients,
            activity_cdf,
        })
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the population is empty (never true after `generate`).
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Client by id.
    pub fn get(&self, id: ClientId) -> &Client {
        &self.clients[id.index()]
    }

    /// All clients.
    pub fn iter(&self) -> impl Iterator<Item = &Client> {
        self.clients.iter()
    }

    /// Samples the client that produces the next session, proportional
    /// to activity weight.
    pub fn sample_client<R: Rng + ?Sized>(&self, rng: &mut R) -> ClientId {
        let u: f64 = rng.gen();
        let idx = self
            .activity_cdf
            .partition_point(|&c| c <= u)
            .min(self.clients.len() - 1);
        self.clients[idx].id
    }

    /// Counts of (local, remote) clients.
    pub fn locality_counts(&self) -> (usize, usize) {
        let local = self
            .clients
            .iter()
            .filter(|c| c.locality == Locality::Local)
            .count();
        (local, self.clients.len() - local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::balanced(2, 3, 5)
    }

    #[test]
    fn generation_respects_local_fraction() {
        let seed = SeedTree::new(20);
        let cfg = ClientConfig {
            n_clients: 400,
            local_fraction: 0.25,
            local_activity_boost: 3.0,
            activity_theta: 0.7,
        };
        let pop = ClientPopulation::generate(&seed, &topo(), &cfg).unwrap();
        assert_eq!(pop.len(), 400);
        let (local, remote) = pop.locality_counts();
        assert_eq!(local, 100);
        assert_eq!(remote, 300);
    }

    #[test]
    fn local_clients_sit_in_campus_subtree() {
        let seed = SeedTree::new(21);
        let t = topo();
        let cfg = ClientConfig::default();
        let pop = ClientPopulation::generate(&seed, &t, &cfg).unwrap();
        let campus = t.children(Topology::ROOT).next().unwrap();
        for c in pop.iter() {
            match c.locality {
                Locality::Local => assert!(t.is_ancestor(campus, c.node)),
                Locality::Remote => assert!(!t.is_ancestor(campus, c.node)),
            }
        }
    }

    #[test]
    fn activity_sampling_is_skewed() {
        let seed = SeedTree::new(22);
        let cfg = ClientConfig {
            n_clients: 100,
            local_fraction: 0.2,
            local_activity_boost: 3.0,
            activity_theta: 1.0,
        };
        let pop = ClientPopulation::generate(&seed, &topo(), &cfg).unwrap();
        let mut rng = SeedTree::new(23).child("draw").rng();
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[pop.sample_client(&mut rng).index()] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = 50_000.0 / 100.0;
        assert!(max > 3.0 * mean, "no heavy user: max {max} mean {mean}");
    }

    #[test]
    fn deterministic_generation() {
        let seed = SeedTree::new(24);
        let cfg = ClientConfig::default();
        let t = topo();
        let p1 = ClientPopulation::generate(&seed, &t, &cfg).unwrap();
        let p2 = ClientPopulation::generate(&seed, &t, &cfg).unwrap();
        for (a, b) in p1.iter().zip(p2.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_bad_config() {
        let seed = SeedTree::new(25);
        let t = topo();
        let cfg = ClientConfig {
            n_clients: 0,
            ..Default::default()
        };
        assert!(ClientPopulation::generate(&seed, &t, &cfg).is_err());
        let cfg = ClientConfig {
            local_fraction: 1.5,
            ..Default::default()
        };
        assert!(ClientPopulation::generate(&seed, &t, &cfg).is_err());
        let cfg = ClientConfig {
            n_clients: MAX_CLIENTS + 1,
            ..Default::default()
        };
        assert!(ClientPopulation::generate(&seed, &t, &cfg).is_err());
    }

    /// Regression for the W2 fix at the `n_local` roundtrip: at
    /// scale-100 magnitudes (a million clients) the
    /// `n_clients × local_fraction` product takes an f64 detour, and
    /// the Local partition must still land inside the population for
    /// any validated fraction — including the 1.0 edge where rounding
    /// drift would previously have been able to push it past the end.
    #[test]
    fn local_partition_never_exceeds_population_at_scale() {
        let seed = SeedTree::new(31);
        let t = topo();
        for frac in [0.0, 0.3, 0.9999999, 1.0] {
            let cfg = ClientConfig {
                n_clients: 1_000_000,
                local_fraction: frac,
                ..Default::default()
            };
            let p = ClientPopulation::generate(&seed, &t, &cfg).unwrap();
            let (local, remote) = p.locality_counts();
            assert_eq!(local + remote, 1_000_000);
            assert!(local <= 1_000_000, "frac {frac}: {local}");
        }
    }

    #[test]
    fn class_bias_shape() {
        use PopularityClass::*;
        // Local clients hit local pages hard and remote pages barely.
        assert!(Locality::Local.class_bias(Local) > Locality::Local.class_bias(Global));
        assert!(Locality::Local.class_bias(Global) > Locality::Local.class_bias(Remote));
        // Symmetric for remote clients.
        assert!(Locality::Remote.class_bias(Remote) > Locality::Remote.class_bias(Global));
        assert!(Locality::Remote.class_bias(Global) > Locality::Remote.class_bias(Local));
    }
}
