//! Calibration tests: the synthetic workload must land on the trace
//! statistics the paper reports, because those statistics are the whole
//! justification for the data substitution (see DESIGN.md §2).
//!
//! The quick variants run in the normal suite; the full-scale variants
//! (`--ignored`) regenerate the exact workload the experiment harness
//! uses and check the calibration at paper scale.

use specweb_core::dist::fit_zipf_theta;
use specweb_netsim::topology::Topology;
use specweb_trace::clients::Locality;
use specweb_trace::generator::{Trace, TraceConfig, TraceGenerator};
use specweb_trace::strides::{segment, summarize};

fn topology() -> Topology {
    Topology::balanced(3, 3, 6)
}

fn generate(cfg: TraceConfig) -> Trace {
    TraceGenerator::new(cfg)
        .unwrap()
        .generate(&topology())
        .unwrap()
}

fn quick_bu(seed: u64) -> Trace {
    let mut cfg = TraceConfig::bu_www(seed);
    cfg.site.n_pages = 120;
    cfg.clients.n_clients = 300;
    cfg.duration_days = 20;
    cfg.sessions_per_day = 80;
    generate(cfg)
}

/// The paper's trace had 205,925 accesses over ~90 days from 8,474
/// clients in >20,000 sessions: about 10 accesses per session and 24
/// per client. Check our session structure is in that regime.
#[test]
fn session_structure_is_paper_like() {
    let t = quick_bu(40);
    let per_session = t.len() as f64 / t.n_sessions as f64;
    assert!(
        (4.0..30.0).contains(&per_session),
        "accesses/session = {per_session}"
    );
    // Timing-derived strides: a handful of accesses each, seconds long.
    let strides = segment(&t, specweb_core::time::Duration::from_secs(5));
    let sum = summarize(&strides);
    assert!(
        (1.5..12.0).contains(&sum.lengths.mean()),
        "stride length mean {}",
        sum.lengths.mean()
    );
}

/// Request popularity must be Zipf-like with θ near the configured
/// exponent (entry Zipf plus preferential linking both push this way).
#[test]
fn popularity_is_zipf_like() {
    let t = quick_bu(41);
    let counts = t.request_counts();
    let theta = fit_zipf_theta(&counts).unwrap();
    assert!(
        (0.5..1.6).contains(&theta),
        "fitted Zipf θ = {theta}, expected near the configured 0.95"
    );
}

/// The local/remote *access* mix should sit near 50/50 (25% local
/// clients with a 3× activity boost — the calibration that makes the
/// paper's 510-locally-popular-documents plurality possible).
#[test]
fn locality_mix_is_calibrated() {
    let t = quick_bu(42);
    let remote = t
        .accesses
        .iter()
        .filter(|a| a.locality == Locality::Remote)
        .count() as f64
        / t.len() as f64;
    assert!(
        (0.35..0.65).contains(&remote),
        "remote access share {remote}"
    );
}

/// Document sizes must be heavy-tailed: mean well above median.
#[test]
fn sizes_are_heavy_tailed() {
    let t = quick_bu(43);
    let mut sizes: Vec<u64> = t.catalog.iter().map(|d| d.size.get()).collect();
    sizes.sort_unstable();
    let median = sizes[sizes.len() / 2] as f64;
    let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
    assert!(
        mean > 1.5 * median,
        "mean {mean} vs median {median}: not heavy-tailed"
    );
}

/// Full-scale calibration against the paper's headline numbers.
/// Slow (~10 s release, ~1 min debug); run with `cargo test -- --ignored`.
#[test]
#[ignore = "full-scale calibration; run explicitly with --ignored"]
fn full_scale_trace_matches_paper_statistics() {
    let t = generate(TraceConfig::bu_www(1996));
    // Paper: 205,925 accesses, >20,000 sessions.
    assert!(
        (120_000..400_000).contains(&t.len()),
        "accesses: {}",
        t.len()
    );
    assert!(t.n_sessions > 10_000, "sessions: {}", t.n_sessions);

    // Top 10% of remotely-accessed bytes must cover ≥80% of remote
    // requests (paper: 91%).
    use specweb_core::units::Bytes;
    let rl = t.remote_local_counts();
    let docs: Vec<(Bytes, u64)> = t
        .catalog
        .iter()
        .map(|d| (d.size, rl[d.id.index()].0))
        .collect();
    let curve = specweb_core::dist::HitCurve::from_documents(&docs).unwrap();
    let b10 = Bytes::new(curve.total_bytes().get() / 10);
    let h = curve.hit_fraction(b10);
    assert!(h > 0.80, "top 10% of bytes covers only {h}");

    // Class trichotomy present with a local plurality among accessed
    // documents (paper: 510 of 974).
    let (r, l, g) = t.catalog.class_counts();
    assert!(r > 0 && l > 0 && g > 0);
    assert!(l > r, "local ({l}) should outnumber remote ({r})");
}
