//! The §3.4 hybrid: server-initiated speculation for near-certain
//! dependencies, server-assisted *hints* for the rest, and client-side
//! profile prefetching — compared against each pure strategy.
//!
//! ```text
//! cargo run --release --example hybrid_prefetch
//! ```

use specweb::prelude::*;
use specweb::spec::policy::Policy as P;

fn main() -> Result<(), CoreError> {
    let topo = Topology::balanced(2, 3, 6);
    let mut tc = TraceConfig::small(23);
    tc.duration_days = 21;
    tc.sessions_per_day = 120;
    let trace = TraceGenerator::new(tc)?.generate(&topo)?;
    let sim = SpecSim::new(&trace, &topo);

    let base = || {
        let mut c = SpecConfig::baseline(0.3);
        c.estimator.history_days = 14;
        c.warmup_days = 7;
        // Re-traversals need session boundaries to be visible.
        c.cache = CacheModel::Session {
            timeout: Duration::from_secs(3_600),
        };
        c
    };

    let mut rows: Vec<(&str, SpecOutcome)> = Vec::new();

    // (a) Pure server speculation at T_p = 0.3.
    rows.push(("server push (T_p=0.3)", sim.run(&base())?));

    // (b) Embedding-only pushes (free but small).
    let mut c = base();
    c.policy = P::EmbeddingOnly;
    rows.push(("embedding-only push", sim.run(&c)?));

    // (c) Hybrid: push certain deps, hint the 0.2..0.95 band; clients
    //     prefetch hints above 0.3.
    let mut c = base();
    c.policy = P::Hybrid {
        push_tp: 0.95,
        hint_tp: 0.2,
    };
    c.hint_policy = HintPolicy::Threshold { tp: 0.3 };
    rows.push(("hybrid push+hint", sim.run(&c)?));

    // (d) Hybrid with profile-gated hints: the client only prefetches
    //     what its own history also predicts.
    let mut c = base();
    c.policy = P::Hybrid {
        push_tp: 0.95,
        hint_tp: 0.2,
    };
    c.hint_policy = HintPolicy::ProfileGated {
        tp: 0.25,
        own_tp: 0.4,
    };
    rows.push(("hybrid, profile-gated", sim.run(&c)?));

    // (e) Pure client-side profile prefetching, no server speculation.
    let mut c = base();
    c.policy = P::TopK { k: 0, floor: 1.0 };
    c.client_profile_prefetch = Some(0.4);
    rows.push(("client profile only", sim.run(&c)?));

    println!("strategy                 traffic    load    time    miss   pushes  prefetches");
    for (name, out) in &rows {
        println!(
            "{name:<24} {:+7.1}% {:+7.1}% {:+7.1}% {:+7.1}%  {:6}  {:6}",
            out.ratios.traffic_increase_pct(),
            -out.ratios.server_load_reduction_pct(),
            -out.ratios.service_time_reduction_pct(),
            -out.ratios.miss_rate_reduction_pct(),
            out.pushes,
            out.prefetches,
        );
    }

    println!();
    println!("The paper's conclusions, visible above: pure client prefetching");
    println!("helps only re-traversals; embedding-only pushes are free but small;");
    println!("the hybrid recovers most of the push savings while moving the");
    println!("speculation decision (and its bandwidth risk) to the client.");
    Ok(())
}
