//! Quickstart: generate a workload and run both of the paper's
//! protocols end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use specweb::prelude::*;

fn main() -> Result<(), CoreError> {
    // 1. The network: a root (where the home server lives), 6 edge
    //    networks, 8 client attachment points each.
    let topo = Topology::two_level(6, 8);

    // 2. A cs-www.bu.edu-flavored workload, scaled down to run in a
    //    couple of seconds in a debug build.
    let mut tc = TraceConfig::small(42);
    tc.duration_days = 21;
    tc.sessions_per_day = 120;
    let trace = TraceGenerator::new(tc)?.generate(&topo)?;
    println!(
        "workload: {} accesses, {} documents, {} clients, {} sessions",
        trace.len(),
        trace.catalog.len(),
        trace.active_clients(),
        trace.n_sessions,
    );

    // 3. Protocol 1 — demand-based dissemination (§2): replicate the
    //    most popular 10% of bytes at 4 well-placed proxies.
    let dissem = DisseminationSim::new(&trace, &topo)?;
    let out = dissem.run(&DisseminationConfig::default(), &[])?;
    println!("\n== data dissemination (top 10% of bytes, 4 proxies) ==");
    println!(
        "requests intercepted by proxies : {:5.1}%",
        out.intercepted_fraction * 100.0
    );
    println!(
        "network traffic (bytes × hops)  : −{:4.1}%",
        out.reduction * 100.0
    );
    println!(
        "proxy storage used              : {}",
        out.total_proxy_storage
    );

    // 4. Protocol 2 — speculative service (§3) at T_p = 0.4 under the
    //    paper's baseline parameters.
    let mut cfg = SpecConfig::baseline(0.4);
    cfg.estimator.history_days = 14;
    cfg.warmup_days = 7;
    let spec = SpecSim::new(&trace, &topo).run(&cfg)?;
    println!("\n== speculative service (T_p = 0.4, baseline params) ==");
    println!(
        "extra traffic   : +{:4.1}%",
        spec.ratios.traffic_increase_pct()
    );
    println!(
        "server load     : −{:4.1}%",
        spec.ratios.server_load_reduction_pct()
    );
    println!(
        "service time    : −{:4.1}%",
        spec.ratios.service_time_reduction_pct()
    );
    println!(
        "client miss rate: −{:4.1}%",
        spec.ratios.miss_rate_reduction_pct()
    );
    println!("pushes: {} ({} wasted)", spec.pushes, spec.wasted_pushes);

    Ok(())
}
