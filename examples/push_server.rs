//! A working prototype of the speculative-service protocol over TCP —
//! the paper's §4: *"Work in progress involves the development of
//! prototypes to test and evaluate these protocols."*
//!
//! A tiny line-oriented protocol (HTTP/1.0 was not much fancier):
//!
//! ```text
//! client → server:  GET <doc-id> [HAVE <id>,<id>,…]\n
//! server → client:  DOC <doc-id> <size>\n
//!                   PUSH <doc-id> <size>\n      (zero or more)
//!                   END\n
//! ```
//!
//! The server estimates `P`/`P*` from a synthetic trace at startup and
//! pushes candidates with `p* ≥ T_p` on every request, skipping ids the
//! client piggybacks in `HAVE` (§3.4's cooperative clients). The demo
//! client browses a few sessions and reports how many of its requests
//! were answered from the speculative cache without touching the wire.
//!
//! ```text
//! cargo run --release --example push_server
//! ```

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use specweb::prelude::*;
use specweb::spec::policy::{decide, Policy};

/// Everything the server thread needs, fixed at startup.
struct ServerState {
    catalog: specweb::trace::document::Catalog,
    direct: DepMatrix,
    closure: DepMatrix,
    policy: Policy,
    max_size: Bytes,
}

fn serve(listener: TcpListener, state: Arc<ServerState>) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { break };
        let state = Arc::clone(&state);
        thread::spawn(move || {
            let _ = handle_client(stream, &state);
        });
    }
}

fn handle_client(stream: TcpStream, state: &ServerState) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        let msg = line.trim();
        if msg == "QUIT" {
            return Ok(());
        }
        let Some(rest) = msg.strip_prefix("GET ") else {
            writeln!(out, "ERR bad request")?;
            continue;
        };
        let (id_part, have_part) = match rest.split_once(" HAVE ") {
            Some((a, b)) => (a, Some(b)),
            None => (rest, None),
        };
        let Ok(raw) = id_part.trim().parse::<u32>() else {
            writeln!(out, "ERR bad id")?;
            continue;
        };
        let doc = DocId::new(raw);
        if doc.index() >= state.catalog.len() {
            writeln!(out, "ERR no such document")?;
            continue;
        }
        // Cooperative digest, straight off the request line.
        let have: HashSet<DocId> = have_part
            .map(|h| {
                h.split(',')
                    .filter_map(|s| s.trim().parse::<u32>().ok())
                    .map(DocId::new)
                    .collect()
            })
            .unwrap_or_default();

        writeln!(out, "DOC {} {}", doc.raw(), state.catalog.size(doc).get())?;
        let decision = decide(
            &state.policy,
            &state.closure,
            &state.direct,
            doc,
            &state.catalog,
            state.max_size,
            |j| have.contains(&j),
        );
        for (j, _) in decision.push {
            if j != doc {
                writeln!(out, "PUSH {} {}", j.raw(), state.catalog.size(j).get())?;
            }
        }
        writeln!(out, "END")?;
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the server's knowledge from a synthetic trace — exactly
    //    the off-line estimation step of §3.2.
    let topo = Topology::two_level(4, 6);
    let mut tc = TraceConfig::small(77);
    tc.duration_days = 10;
    tc.sessions_per_day = 80;
    let trace = TraceGenerator::new(tc)?.generate(&topo)?;
    let direct = DepMatrixBuilder::estimate(&trace.accesses, Duration::from_secs(5), 2);
    let closure = direct.closure(0.05, 64)?;
    println!(
        "server: estimated P from {} accesses ({} pairs, closure {})",
        trace.len(),
        direct.n_entries(),
        closure.n_entries()
    );

    let state = Arc::new(ServerState {
        catalog: trace.catalog.clone(),
        direct,
        closure,
        policy: Policy::Threshold { tp: 0.3 },
        max_size: Bytes::INFINITE,
    });

    // 2. Start the server on an ephemeral local port.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    println!("server: listening on {addr} (T_p = 0.3, cooperative)");
    let server_state = Arc::clone(&state);
    thread::spawn(move || serve(listener, server_state));

    // 3. A client browses: replay a few real client streams from the
    //    trace against the live server, maintaining a local cache.
    let mut wire_requests = 0u64;
    let mut cache_hits = 0u64;
    let mut pushed_total = 0u64;
    let mut cache: HashSet<DocId> = HashSet::new();

    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut sock = stream;

    let client = trace.accesses[0].client;
    let browse: Vec<DocId> = trace
        .accesses
        .iter()
        .filter(|a| a.client == client)
        .map(|a| a.doc)
        .take(200)
        .collect();
    println!("client: replaying {} requests of {client}", browse.len());

    for doc in browse {
        if cache.contains(&doc) {
            cache_hits += 1;
            continue;
        }
        // Piggyback a digest of (up to) 64 cached ids, §3.4-style.
        let digest: Vec<String> = cache.iter().take(64).map(|d| d.raw().to_string()).collect();
        if digest.is_empty() {
            writeln!(sock, "GET {}", doc.raw())?;
        } else {
            writeln!(sock, "GET {} HAVE {}", doc.raw(), digest.join(","))?;
        }
        wire_requests += 1;

        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err("server closed unexpectedly".into());
            }
            let msg = line.trim();
            if msg == "END" {
                break;
            } else if let Some(rest) = msg.strip_prefix("PUSH ") {
                if let Some(id) = rest
                    .split_whitespace()
                    .next()
                    .and_then(|s| s.parse::<u32>().ok())
                {
                    cache.insert(DocId::new(id));
                    pushed_total += 1;
                }
            } else if let Some(rest) = msg.strip_prefix("DOC ") {
                if let Some(id) = rest
                    .split_whitespace()
                    .next()
                    .and_then(|s| s.parse::<u32>().ok())
                {
                    cache.insert(DocId::new(id));
                }
            } else if msg.starts_with("ERR") {
                return Err(format!("server error: {msg}").into());
            }
        }
    }
    writeln!(sock, "QUIT")?;

    let total = wire_requests + cache_hits;
    println!("\n== prototype session summary ==");
    println!("client accesses       : {total}");
    println!("requests on the wire  : {wire_requests}");
    println!(
        "served from cache     : {cache_hits} ({:.0}% — misses avoided by pushes + revisits)",
        cache_hits as f64 / total as f64 * 100.0
    );
    println!("documents pushed      : {pushed_total}");
    println!("\nThe protocol works end to end: one request on the wire carries");
    println!("the document plus the server's speculation, and the cooperative");
    println!("HAVE digest keeps the pushes from re-sending the client's cache.");
    Ok(())
}
