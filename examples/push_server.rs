//! A working prototype of the speculative-service protocol over TCP —
//! the paper's §4: *"Work in progress involves the development of
//! prototypes to test and evaluate these protocols."*
//!
//! This is a thin driver over the hardened [`specweb::serve`] crate:
//! the server runs with bounded request parsing, per-connection
//! deadlines, and graceful overload degradation; the client retries
//! transient failures with capped exponential backoff and piggybacks a
//! §3.4 cooperative `HAVE` digest from its push-fed cache.
//!
//! ```text
//! cargo run --release --example push_server
//! ```

use specweb::prelude::*;
use specweb::serve::client::{ClientConfig, SpecClient};
use specweb::serve::server::{ServerConfig, ServerKnowledge, SpecServer};
use specweb::spec::policy::Policy;

fn main() -> Result<(), CoreError> {
    // 1. Build the server's knowledge from a synthetic trace — exactly
    //    the off-line estimation step of §3.2.
    let topo = Topology::two_level(4, 6);
    let mut tc = TraceConfig::small(77);
    tc.duration_days = 10;
    tc.sessions_per_day = 80;
    let trace = TraceGenerator::new(tc)?.generate(&topo)?;
    let direct = DepMatrixBuilder::estimate(&trace.accesses, Duration::from_secs(5), 2);
    let closure = direct.closure(0.05, 64)?;
    println!(
        "server: estimated P from {} accesses ({} pairs, closure {})",
        trace.len(),
        direct.n_entries(),
        closure.n_entries()
    );

    // 2. Start the hardened server on an ephemeral local port.
    let handle = SpecServer::spawn(
        ServerKnowledge {
            catalog: trace.catalog.clone(),
            direct,
            closure,
            policy: Policy::Threshold { tp: 0.3 },
            max_size: Bytes::INFINITE,
        },
        ServerConfig::default(),
    )?;
    println!(
        "server: listening on {} (T_p = 0.3, cooperative, deadlines + overload control on)",
        handle.addr()
    );

    // 3. A client browses: replay a few real client streams from the
    //    trace against the live server; the crate's client keeps the
    //    push-fed cache and the HAVE digest for us.
    let mut client = SpecClient::new(handle.addr(), ClientConfig::default())?;
    let who = trace.accesses[0].client;
    let browse: Vec<DocId> = trace
        .accesses
        .iter()
        .filter(|a| a.client == who)
        .map(|a| a.doc)
        .take(200)
        .collect();
    println!("client: replaying {} requests of {who}", browse.len());

    let mut wire_requests = 0u64;
    let mut cache_hits = 0u64;
    let mut pushed_total = 0u64;
    for doc in browse {
        let r = client.fetch(doc)?;
        if r.from_cache {
            cache_hits += 1;
        } else {
            wire_requests += 1;
            pushed_total = pushed_total.saturating_add(r.pushed.len() as u64);
        }
    }
    client.quit()?;

    let total = wire_requests + cache_hits;
    let stats = handle.stats();
    handle.shutdown()?;

    println!("\n== prototype session summary ==");
    println!("client accesses       : {total}");
    println!("requests on the wire  : {wire_requests}");
    println!(
        "served from cache     : {cache_hits} ({:.0}% — misses avoided by pushes + revisits)",
        cache_hits as f64 / total as f64 * 100.0
    );
    println!("documents pushed      : {pushed_total}");
    println!(
        "server saw            : {} requests, {} pushes, {} protocol errors",
        stats.requests, stats.pushes, stats.protocol_errors
    );
    println!("\nThe protocol works end to end: one request on the wire carries");
    println!("the document plus the server's speculation, and the cooperative");
    println!("HAVE digest keeps the pushes from re-sending the client's cache.");
    Ok(())
}
