//! The off-line log-analysis pipeline of §2, end to end:
//! write a trace out as an httpd-style log, parse it back, apply the
//! paper's cleaning rules, classify documents, and fit the exponential
//! popularity model.
//!
//! ```text
//! cargo run --release --example log_analysis
//! ```

use specweb::prelude::*;
use specweb::trace::cleaning::{clean, CleaningConfig};
use specweb::trace::logfmt;

fn main() -> Result<(), CoreError> {
    let topo = Topology::two_level(5, 8);
    let mut tc = TraceConfig::small(17);
    tc.duration_days = 21;
    tc.sessions_per_day = 100;
    let trace = TraceGenerator::new(tc)?.generate(&topo)?;

    // 1. Serialize to a Common-Log-Format-style text log.
    let log_text = logfmt::write_log(&trace);
    println!(
        "wrote {} log lines ({} KB)",
        trace.len(),
        log_text.len() / 1024
    );

    // 2. Parse it back and clean it (footnote 6 of the paper).
    let (records, bad_lines) = logfmt::parse_log(&log_text);
    let (cleaned, report) = clean(records, &CleaningConfig::typical());
    println!(
        "parsed {} records ({} malformed), cleaning kept {} \
         (dropped: {} non-existent, {} scripts, {} live; {} aliased)",
        cleaned
            .len()
            .saturating_add(report.non_existent)
            .saturating_add(report.scripts)
            .saturating_add(report.live),
        bad_lines.len(),
        report.kept,
        report.non_existent,
        report.scripts,
        report.live,
        report.aliased,
    );

    // 3. Popularity analysis (Fig. 1's machinery).
    let profile = ServerProfile::from_trace(&trace, ServerId::new(0), 21)?;
    println!("\n== popularity profile of S0 ==");
    println!(
        "remote demand R      : {:.1} KB/day",
        profile.remote_bytes_per_day / 1e3
    );
    println!("fitted λ             : {:.3e} per byte", profile.lambda);
    let model = profile.model()?;
    for frac in [0.005, 0.04, 0.10] {
        let b = Bytes::new((profile.remotely_accessed_bytes().as_f64() * frac) as u64);
        println!(
            "top {:4.1}% of bytes ({b}) covers {:4.1}% of remote requests \
             (exp model predicts {:4.1}%)",
            frac * 100.0,
            profile.hit_curve.hit_fraction(b) * 100.0,
            model.hit_probability(b) * 100.0,
        );
    }

    // 4. Document classification (§2's trichotomy + mutability).
    let updates = UpdateProcess::default().generate(&SeedTree::new(17), &trace.catalog, 60);
    let classified = Classifier::default().classify(&trace, &updates, 60);
    let (r, l, g, u) = Classifier::class_summary(&classified);
    println!("\n== classification of {} documents ==", classified.len());
    println!("remotely popular : {r:4}");
    println!("locally popular  : {l:4}");
    println!("globally popular : {g:4}");
    println!("never accessed   : {u:4}");
    let cands = Classifier::dissemination_candidates(&classified);
    println!(
        "dissemination candidates (non-mutable, remote audience): {}",
        cands.len()
    );

    Ok(())
}
