//! The §2.3 bottleneck story, end to end: aggressive dissemination
//! concentrates load on the proxy tier; adding dissemination levels
//! dissolves it; and the M/G/1 model translates the remaining request
//! rates into response times an operator would see.
//!
//! ```text
//! cargo run --release --example bottleneck
//! ```

use specweb::dissem::hierarchy;
use specweb::dissem::simulate::{DisseminationConfig, DisseminationSim};
use specweb::netsim::queueing::Mg1;
use specweb::prelude::*;

fn main() -> Result<(), CoreError> {
    // A 3-level hierarchy: 3 backbones → 9 regionals → 27 edges.
    let topo = Topology::balanced(3, 3, 4);
    let mut tc = TraceConfig::small(55);
    tc.duration_days = 14;
    tc.sessions_per_day = 150;
    let trace = TraceGenerator::new(tc)?.generate(&topo)?;
    let sim = DisseminationSim::new(&trace, &topo)?;

    let base = DisseminationConfig {
        fraction: 0.15,
        ..DisseminationConfig::default()
    };

    // Per-proxy capacity: a modest 1995 box.
    let cap_per_day = 600u64;
    println!("dissemination of the top 15% of bytes; each proxy can serve {cap_per_day} req/day\n");

    let rows = hierarchy::compare_levels(&sim, &topo, &base, 3, cap_per_day)?;
    println!("levels  proxies      shed    intercept    traffic saved");
    for r in &rows {
        println!(
            "{:>6}  {:>7}  {:>8}   {:>7.1}%   {:>10.1}%",
            r.levels,
            r.n_proxies,
            r.shed_requests,
            r.intercepted * 100.0,
            r.reduction * 100.0
        );
    }

    // What the origin server feels: requests that are NOT intercepted
    // arrive at the origin. Scale to a production operating point — a
    // 1995 httpd (capacity 20 req/s) whose un-shielded peak-hour rate
    // would be 19 req/s (ρ = 0.95) — and let the measured interception
    // fractions shave it down.
    println!("\n== the origin server's queue (M/G/1, 50 ms service, c²=4) ==");
    let server = Mg1::httpd_1995();
    let peak_lambda = 19.0; // un-shielded peak arrivals, req/s
    let fmt = |resp: Option<f64>| match resp {
        Some(t) => format!("{:.0} ms", t * 1000.0),
        None => "saturated".into(),
    };
    println!(
        "  no dissemination: origin sees {peak_lambda:4.1} req/s at peak → response {}",
        fmt(server.mean_response_secs(peak_lambda))
    );
    for r in &rows {
        let lambda = peak_lambda * (1.0 - r.intercepted);
        println!(
            "  {} level(s):       origin sees {lambda:4.1} req/s at peak → response {}",
            r.levels,
            fmt(server.mean_response_secs(lambda))
        );
    }

    println!(
        "\nTakeaway (§2.3): a single proxy level under load sheds requests\n\
         back to the origin; letting dissemination continue \"for another\n\
         level, and so on\" spreads the load, keeps interception high, and\n\
         relieves the origin's queue."
    );
    Ok(())
}
