//! Campus mirror: a cluster of university servers behind one service
//! proxy (§2's running scenario).
//!
//! Ten departmental servers of very different popularity share one
//! proxy. We mine each server's demand `R_i` and popularity rate `λ_i`
//! from the trace, then compare three ways of rationing the proxy's
//! storage: the paper's optimal allocation (eqs. 4–5), proportional to
//! demand, and a uniform split — and show the eq. 10 sizing rule.
//!
//! ```text
//! cargo run --release --example campus_mirror
//! ```

use specweb::dissem::alloc;
use specweb::prelude::*;

fn main() -> Result<(), CoreError> {
    let topo = Topology::balanced(2, 4, 6);

    // Ten servers with Zipf-skewed popularity.
    let mut tc = TraceConfig::cluster(7, 10);
    tc.duration_days = 14;
    tc.sessions_per_day = 220;
    tc.site.n_pages = 80;
    let trace = TraceGenerator::new(tc)?.generate(&topo)?;
    println!(
        "cluster trace: {} accesses over {} servers",
        trace.len(),
        trace.graphs.len()
    );

    // Mine per-server profiles (the paper's off-line log analysis).
    let mut models = Vec::new();
    println!("\n server   R_i (KB/day)   λ_i (per byte)");
    for s in 0..10u32 {
        let profile = ServerProfile::from_trace(&trace, ServerId::new(s), 14)?;
        println!(
            "   S{:<4} {:>12.1}   {:.3e}",
            s + 1,
            profile.remote_bytes_per_day / 1e3,
            profile.lambda
        );
        models.push(ServerModel {
            lambda: profile.lambda,
            demand: profile.remote_bytes_per_day,
        });
    }

    // Ration a 2 MiB proxy three ways and compare the predicted α_C.
    let b0 = Bytes::from_kib(256);
    let opt = optimize(&models, b0)?;
    let pro = allocate_proportional(&models, b0)?;
    let uni = allocate_uniform(&models, b0)?;
    println!("\n== predicted intercepted fraction α_C for B₀ = {b0} ==");
    println!("  optimal (eqs. 4–5) : {:5.1}%", opt.alpha * 100.0);
    println!("  ∝ demand           : {:5.1}%", pro.alpha * 100.0);
    println!("  uniform            : {:5.1}%", uni.alpha * 100.0);

    println!("\n  per-server optimal quotas:");
    for (i, b) in opt.bytes.iter().enumerate() {
        println!("    S{:<3} {b}", i + 1);
    }

    // Eq. 10 (corrected): storage needed for a target shielding level,
    // reproducing the paper's 36 MB example.
    println!("\n== eq. 10 sizing (paper's symmetric-cluster example) ==");
    let lambda = ExponentialPopularity::BU_WWW_LAMBDA;
    for alpha in [0.5, 0.9, 0.96] {
        let b = alloc::storage_for_alpha(10, lambda, alpha)?;
        println!(
            "  shield 10 servers from {:4.0}% of remote load: {:6.1} MB",
            alpha * 100.0,
            b.as_f64() / 1e6
        );
    }

    Ok(())
}
