//! Speculative service on a media-heavy site.
//!
//! The paper's footnote 2 corroborates its popularity findings on the
//! Rolling Stones web site — 1 GB/day of multimedia to tens of
//! thousands of clients. This example runs the speculative-service
//! protocol on such a site (few pages, huge embedded objects, almost
//! entirely remote clientele) and shows why the `MaxSize` cap matters
//! so much more here than on a homepage-sized server.
//!
//! ```text
//! cargo run --release --example media_site
//! ```

use specweb::prelude::*;

fn main() -> Result<(), CoreError> {
    let topo = Topology::balanced(2, 4, 8);
    let mut tc = TraceConfig::media_site(99);
    tc.duration_days = 14;
    tc.sessions_per_day = 150;
    let trace = TraceGenerator::new(tc)?.generate(&topo)?;
    println!(
        "media trace: {} accesses, catalog {} ({} total)",
        trace.len(),
        trace.catalog.len(),
        trace.catalog.total_bytes()
    );

    let sim = SpecSim::new(&trace, &topo);
    let base = |tp: f64| {
        let mut c = SpecConfig::baseline(tp);
        c.estimator.history_days = 10;
        c.warmup_days = 5;
        c
    };

    println!("\n== unlimited MaxSize: traffic explodes with aggression ==");
    println!("   T_p   traffic    load    time    miss");
    for tp in [0.9, 0.5, 0.25, 0.1] {
        let out = sim.run(&base(tp))?;
        println!(
            "  {tp:4.2}   {:+6.1}%  {:+6.1}%  {:+6.1}%  {:+6.1}%",
            out.ratios.traffic_increase_pct(),
            -out.ratios.server_load_reduction_pct(),
            -out.ratios.service_time_reduction_pct(),
            -out.ratios.miss_rate_reduction_pct()
        );
    }

    println!("\n== T_p = 0.25 with a MaxSize cap: same load savings, a fraction of the traffic ==");
    println!("   MaxSize   traffic    load    pushes (wasted)");
    for max_kib in [u64::MAX, 512, 128, 32] {
        let mut c = base(0.25);
        c.max_size = if max_kib == u64::MAX {
            Bytes::INFINITE
        } else {
            Bytes::from_kib(max_kib)
        };
        let out = sim.run(&c)?;
        let label = if max_kib == u64::MAX {
            "      ∞".to_string()
        } else {
            format!("{max_kib:>5}KiB")
        };
        println!(
            "  {label}   {:+6.1}%  {:+6.1}%   {} ({})",
            out.ratios.traffic_increase_pct(),
            -out.ratios.server_load_reduction_pct(),
            out.pushes,
            out.wasted_pushes
        );
    }

    println!("\nTakeaway: on a media site, capping speculative pushes to small");
    println!("documents keeps most of the server-load savings while avoiding");
    println!("megabytes of wasted video pushes — the paper's §3.4 observation.");
    Ok(())
}
